// Continuous-monitoring stack: time-series ring semantics, sampler
// derivation (counter->rate, gauge->level, histogram->p99), health
// watchdog state machine with owner-annotated alerts, the on-NIC
// top-talkers table under SRAM pressure, the bounded sniffer capture,
// queue watermark latching, and norman-top's byte-stable rendering.
#include <gtest/gtest.h>

#include "src/common/health.h"
#include "src/common/metrics.h"
#include "src/common/timeseries.h"
#include "src/dataplane/sniffer.h"
#include "src/net/packet_builder.h"
#include "src/net/parsed_packet.h"
#include "src/nic/sram.h"
#include "src/nic/top_talkers.h"
#include "src/norman/socket.h"
#include "src/sim/simulator.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using telemetry::HealthState;

// ---- TimeSeries ring ------------------------------------------------------

TEST(TimeSeriesTest, RingKeepsNewestCapacityPoints) {
  telemetry::TimeSeries s(4);
  for (int i = 1; i <= 6; ++i) {
    s.Push(i * 10, i);
  }
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.capacity(), 4u);
  EXPECT_EQ(s.total_pushed(), 6u);
  // Oldest retained point is push #3; newest is push #6.
  EXPECT_EQ(s.At(0).t, 30);
  EXPECT_EQ(s.At(0).value, 3);
  EXPECT_EQ(s.At(3).t, 60);
  EXPECT_EQ(s.Latest().value, 6);
}

TEST(TimeSeriesTest, PartiallyFilledReadsInOrder) {
  telemetry::TimeSeries s(8);
  s.Push(1, 1.5);
  s.Push(2, 2.5);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.At(0).value, 1.5);
  EXPECT_EQ(s.At(1).value, 2.5);
}

// ---- Sampler derivation ---------------------------------------------------

TEST(SamplerTest, DerivesRateLevelAndTailSeries) {
  telemetry::MetricsRegistry reg;
  auto* packets = reg.GetCounter("nic.tx.seen");
  auto* depth = reg.GetGauge("queue.test.depth");
  auto* lat = reg.GetHistogram("trace.stage.test");
  telemetry::TimeSeriesSampler sampler(&reg);

  packets->Increment(1000);
  depth->Set(7);
  lat->Add(500);
  lat->Add(900);
  sampler.Sample(1 * kSecond);  // window [0, 1s): 1000 pkts -> 1000/s

  packets->Increment(250);
  depth->Set(3);
  sampler.Sample(3 * kSecond);  // window [1s, 3s): 250 pkts -> 125/s

  const auto* rate = sampler.Find("nic.tx.seen.rate");
  ASSERT_NE(rate, nullptr);
  ASSERT_EQ(rate->size(), 2u);
  EXPECT_DOUBLE_EQ(rate->At(0).value, 1000.0);
  EXPECT_DOUBLE_EQ(rate->At(1).value, 125.0);

  const auto* level = sampler.Find("queue.test.depth");
  ASSERT_NE(level, nullptr);
  EXPECT_DOUBLE_EQ(level->At(0).value, 7.0);
  EXPECT_DOUBLE_EQ(level->At(1).value, 3.0);

  const auto* p99 = sampler.Find("trace.stage.test.p99");
  ASSERT_NE(p99, nullptr);
  EXPECT_GE(p99->At(0).value, 900.0);  // bucket upper bound >= max added

  EXPECT_EQ(sampler.samples_taken(), 2u);
  EXPECT_EQ(sampler.last_sample_at(), 3 * kSecond);
}

TEST(SamplerTest, RepeatedTimestampIsNoop) {
  telemetry::MetricsRegistry reg;
  reg.GetCounter("c")->Increment(10);
  telemetry::TimeSeriesSampler sampler(&reg);
  sampler.Sample(kSecond);
  sampler.Sample(kSecond);  // zero-width window: dropped
  EXPECT_EQ(sampler.samples_taken(), 1u);
  EXPECT_EQ(sampler.Find("c.rate")->size(), 1u);
}

TEST(SamplerTest, JsonReportIsByteStable) {
  auto run = [] {
    telemetry::MetricsRegistry reg;
    auto* c = reg.GetCounter("pkts");
    auto* g = reg.GetGauge("depth");
    telemetry::TimeSeriesSampler sampler(&reg);
    for (int i = 1; i <= 5; ++i) {
      c->Increment(100 + i);
      g->Set(i);
      sampler.Sample(i * kMillisecond);
    }
    return sampler.JsonReport();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"samples\":5"), std::string::npos);
  EXPECT_NE(a.find("\"pkts.rate\""), std::string::npos);
}

// ---- Health watchdog ------------------------------------------------------

TEST(WatchdogTest, StalledQueueDegradesThenStallsThenRecovers) {
  telemetry::MetricsRegistry reg;
  auto* depth = reg.GetGauge("queue.test.depth");
  telemetry::TimeSeriesSampler sampler(&reg);
  telemetry::HealthWatchdog dog(&sampler, &reg);
  dog.AddQueueStallRule("test.q", "queue.test.depth", "team.dataplane",
                        /*windows=*/3, /*min_depth=*/1);

  // One backed-up window: still healthy (streak 1 < degraded threshold 2).
  depth->Set(5);
  sampler.Sample(1 * kMillisecond);
  dog.Evaluate(1 * kMillisecond);
  EXPECT_EQ(dog.StateOf("test.q"), HealthState::kHealthy);

  // Second window at the same depth: degraded.
  depth->Set(5);
  sampler.Sample(2 * kMillisecond);
  dog.Evaluate(2 * kMillisecond);
  EXPECT_EQ(dog.StateOf("test.q"), HealthState::kDegraded);

  // Third window, still not draining: stalled.
  depth->Set(6);
  sampler.Sample(3 * kMillisecond);
  dog.Evaluate(3 * kMillisecond);
  EXPECT_EQ(dog.StateOf("test.q"), HealthState::kStalled);

  // The queue drains: recovered.
  depth->Set(0);
  sampler.Sample(4 * kMillisecond);
  dog.Evaluate(4 * kMillisecond);
  EXPECT_EQ(dog.StateOf("test.q"), HealthState::kHealthy);

  ASSERT_EQ(dog.alerts().size(), 3u);
  EXPECT_EQ(dog.alerts()[0].to, HealthState::kDegraded);
  EXPECT_EQ(dog.alerts()[1].to, HealthState::kStalled);
  EXPECT_EQ(dog.alerts()[2].to, HealthState::kHealthy);
  EXPECT_EQ(dog.alerts()[2].reason, "recovered");
  for (const auto& a : dog.alerts()) {
    EXPECT_EQ(a.owner, "team.dataplane");
    EXPECT_EQ(a.component, "test.q");
  }
  // Counter tracks the alert volume; gauges track the component census.
  EXPECT_EQ(reg.GetCounter("health.alerts")->value(), 3u);
  EXPECT_EQ(reg.GetGauge("health.components.healthy")->value(), 1);
}

TEST(WatchdogTest, AlertLogOverflowEvictsOldestFirst) {
  telemetry::MetricsRegistry reg;
  auto* depth = reg.GetGauge("queue.test.depth");
  telemetry::TimeSeriesSampler sampler(&reg);
  telemetry::HealthWatchdog::Options opts;
  opts.max_alerts = 4;
  telemetry::HealthWatchdog dog(&sampler, &reg, opts);
  dog.AddQueueStallRule("test.q", "queue.test.depth", "o", /*windows=*/3, 1);

  Nanos t = 0;
  auto window = [&](int64_t d) {
    depth->Set(d);
    t += kMillisecond;
    sampler.Sample(t);
    dog.Evaluate(t);
  };
  // Each stall/drain cycle logs degraded, stalled, recovered — three
  // cycles log 9 alerts against a bound of 4.
  for (int cycle = 0; cycle < 3; ++cycle) {
    window(5);
    window(5);  // degraded
    window(6);  // stalled
    window(0);  // recovered
  }
  EXPECT_EQ(dog.alerts().size(), 4u);
  EXPECT_EQ(dog.alerts_dropped(), 5u);
  // The registry counter still counts every transition ever logged.
  EXPECT_EQ(reg.GetCounter("health.alerts")->value(), 9u);
  // Oldest-first eviction: the survivors are the newest four (cycle 2's
  // recovery at t=8ms, then all of cycle 3), in chronological order.
  EXPECT_EQ(dog.alerts().front().t, 8 * kMillisecond);
  EXPECT_EQ(dog.alerts().front().to, HealthState::kHealthy);
  EXPECT_EQ(dog.alerts().back().t, 12 * kMillisecond);
  for (size_t i = 1; i < dog.alerts().size(); ++i) {
    EXPECT_LT(dog.alerts()[i - 1].t, dog.alerts()[i].t);
  }
}

TEST(WatchdogTest, StalledHealthyStalledFlapLogsDistinctAlerts) {
  telemetry::MetricsRegistry reg;
  auto* down = reg.GetGauge("fault.link.down");
  telemetry::TimeSeriesSampler sampler(&reg);
  telemetry::HealthWatchdog dog(&sampler, &reg);
  dog.AddLinkDownRule("link", "fault.link.down", "net.wire");

  Nanos t = 0;
  auto window = [&](int64_t v) {
    down->Set(v);
    t += kMillisecond;
    sampler.Sample(t);
    dog.Evaluate(t);
  };
  window(1);  // stalled
  window(0);  // recovered
  window(1);  // stalled again: a distinct alert, not a dedup
  ASSERT_EQ(dog.alerts().size(), 3u);
  EXPECT_EQ(dog.alerts()[0].to, HealthState::kStalled);
  EXPECT_EQ(dog.alerts()[1].to, HealthState::kHealthy);
  EXPECT_EQ(dog.alerts()[1].reason, "recovered");
  EXPECT_EQ(dog.alerts()[2].to, HealthState::kStalled);
  EXPECT_NE(dog.alerts()[0].t, dog.alerts()[2].t);
  EXPECT_EQ(dog.alerts_dropped(), 0u);
}

TEST(WatchdogTest, DrainingQueueIsNotAStall) {
  telemetry::MetricsRegistry reg;
  auto* depth = reg.GetGauge("queue.test.depth");
  telemetry::TimeSeriesSampler sampler(&reg);
  telemetry::HealthWatchdog dog(&sampler, &reg);
  dog.AddQueueStallRule("test.q", "queue.test.depth", "o", 3, 1);
  // Deep but strictly draining each window: backpressure, not a stall.
  for (int i = 0; i < 5; ++i) {
    depth->Set(100 - 20 * i);
    sampler.Sample((i + 1) * kMillisecond);
    dog.Evaluate((i + 1) * kMillisecond);
  }
  EXPECT_EQ(dog.StateOf("test.q"), HealthState::kHealthy);
  EXPECT_TRUE(dog.alerts().empty());
}

TEST(WatchdogTest, RateSpikeDegradesWhileElevated) {
  telemetry::MetricsRegistry reg;
  auto* drops = reg.GetCounter("nic.drops");
  telemetry::TimeSeriesSampler sampler(&reg);
  telemetry::HealthWatchdog dog(&sampler, &reg);
  dog.AddRateSpikeRule("nic", "nic.drops.rate", "oncall", /*per_second=*/50.0);

  drops->Increment(10);  // 10 drops over 1s = 10/s: fine
  sampler.Sample(1 * kSecond);
  dog.Evaluate(1 * kSecond);
  EXPECT_EQ(dog.StateOf("nic"), HealthState::kHealthy);

  drops->Increment(200);  // 200/s: spike
  sampler.Sample(2 * kSecond);
  dog.Evaluate(2 * kSecond);
  EXPECT_EQ(dog.StateOf("nic"), HealthState::kDegraded);

  sampler.Sample(3 * kSecond);  // no new drops: 0/s
  dog.Evaluate(3 * kSecond);
  EXPECT_EQ(dog.StateOf("nic"), HealthState::kHealthy);
  EXPECT_EQ(dog.alerts().size(), 2u);
}

// ---- Top talkers ----------------------------------------------------------

net::FiveTuple Tuple(uint16_t src_port) {
  return {net::Ipv4Address::FromOctets(10, 0, 0, 1),
          net::Ipv4Address::FromOctets(10, 0, 0, 2), src_port, 80,
          net::IpProto::kUdp};
}

TEST(TopTalkersTest, EvictsSmallestUnderSramPressure) {
  telemetry::MetricsRegistry reg;
  // Room for exactly two entries: 2 * 48 = 96 bytes.
  nic::SramAllocator sram(2 * nic::kTopTalkerEntryBytes);
  nic::TopTalkers tt(&sram, &reg, /*max_entries=*/64);

  tt.Record(Tuple(1000), 1, 5000, 10);  // heavy
  tt.Record(Tuple(2000), 2, 100, 20);   // light
  EXPECT_EQ(tt.size(), 2u);
  EXPECT_EQ(sram.available(), 0u);

  // A third flow arrives with SRAM exhausted: the light flow is evicted.
  tt.Record(Tuple(3000), 3, 700, 30);
  EXPECT_EQ(tt.size(), 2u);
  EXPECT_EQ(tt.evicted(), 1u);
  EXPECT_EQ(tt.Lookup(Tuple(2000)), nullptr);
  ASSERT_NE(tt.Lookup(Tuple(1000)), nullptr);
  ASSERT_NE(tt.Lookup(Tuple(3000)), nullptr);

  // Ranking: most bytes first.
  const auto top = tt.Top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].bytes, 5000u);
  EXPECT_EQ(top[1].bytes, 700u);
}

TEST(TopTalkersTest, MaxEntriesBoundEvicts) {
  telemetry::MetricsRegistry reg;
  nic::SramAllocator sram(1 << 20);  // ample SRAM: the table bound governs
  nic::TopTalkers tt(&sram, &reg, /*max_entries=*/2);
  tt.Record(Tuple(1), 1, 300, 1);
  tt.Record(Tuple(2), 1, 200, 2);
  tt.Record(Tuple(3), 1, 900, 3);
  EXPECT_EQ(tt.size(), 2u);
  EXPECT_EQ(tt.evicted(), 1u);
  EXPECT_EQ(tt.Lookup(Tuple(2)), nullptr);  // smallest evicted
  // SRAM stays charged for exactly the live entries.
  EXPECT_EQ(sram.used(), 2 * nic::kTopTalkerEntryBytes);
}

TEST(TopTalkersTest, UntrackedWhenNoSramAtAll) {
  telemetry::MetricsRegistry reg;
  nic::SramAllocator sram(nic::kTopTalkerEntryBytes - 8);  // fits nothing
  nic::TopTalkers tt(&sram, &reg, 64);
  tt.Record(Tuple(1), 1, 100, 1);
  EXPECT_EQ(tt.size(), 0u);
  EXPECT_EQ(tt.untracked(), 1u);
  EXPECT_EQ(reg.GetCounter("flow.untracked")->value(), 1u);
}

TEST(TopTalkersTest, RepeatedPacketsAccumulateThroughHotCache) {
  telemetry::MetricsRegistry reg;
  nic::SramAllocator sram(1 << 20);
  nic::TopTalkers tt(&sram, &reg, 64);
  for (int i = 0; i < 100; ++i) {
    tt.Record(Tuple(1), 7, 100, i);
  }
  tt.Record(Tuple(2), 8, 1, 200);
  for (int i = 0; i < 50; ++i) {
    tt.Record(Tuple(1), 7, 100, 300 + i);
  }
  const auto* e = tt.Lookup(Tuple(1));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->packets, 150u);
  EXPECT_EQ(e->bytes, 15000u);
  EXPECT_EQ(e->first_seen, 0);
  EXPECT_EQ(e->last_seen, 349);
  EXPECT_EQ(e->owner_pid, 7u);
}

// ---- Sniffer capture bound ------------------------------------------------

TEST(SnifferTest, CaptureBufferIsBounded) {
  sim::Simulator sim;
  dataplane::SnifferTap tap(&sim, /*snaplen=*/96, /*max_records=*/3);
  tap.Start();

  const net::FrameEndpoints ep{net::MacAddress::ForHost(1),
                               net::MacAddress::ForHost(2),
                               net::Ipv4Address::FromOctets(10, 0, 0, 1),
                               net::Ipv4Address::FromOctets(10, 0, 0, 2)};
  const auto frame =
      net::BuildUdpFrame(ep, 1111, 2222, std::vector<uint8_t>(64, 0xcd));
  const auto parsed = *net::ParseFrame(frame);
  overlay::PacketContext ctx;
  ctx.frame = frame;
  ctx.parsed = &parsed;
  ctx.direction = net::Direction::kTx;

  net::Packet packet(frame);
  for (int i = 0; i < 5; ++i) {
    tap.Process(packet, ctx);
  }
  // tcpdump -c semantics: the first 3 are retained, 2 overflowed, and the
  // pcap byte stream stays consistent with the record list.
  EXPECT_EQ(tap.records().size(), 3u);
  EXPECT_EQ(tap.overflow(), 2u);
  EXPECT_EQ(tap.pcap().record_count(), 3u);
  EXPECT_EQ(sim.metrics().GetCounter("sniffer.overflow")->value(), 2u);
}

// ---- Queue watermarks -----------------------------------------------------

TEST(QueueDepthGaugesTest, HighWaterLatches) {
  telemetry::MetricsRegistry reg;
  telemetry::QueueDepthGauges g(&reg, "unit");
  g.Add(3);
  EXPECT_EQ(g.depth(), 3);
  EXPECT_EQ(g.high_water(), 3);
  g.Add(-2);
  EXPECT_EQ(g.depth(), 1);
  EXPECT_EQ(g.high_water(), 3);  // watermark holds
  g.Set(9);
  EXPECT_EQ(g.high_water(), 9);
  g.Set(0);
  EXPECT_EQ(reg.GetGauge("queue.unit.depth")->value(), 0);
  EXPECT_EQ(reg.GetGauge("queue.unit.high_water")->value(), 9);
}

// ---- norman-top rendering -------------------------------------------------

std::pair<std::string, std::string> RunTopScenario() {
  workload::TestBedOptions opts;
  opts.echo = true;
  opts.kernel.housekeeping_period = 200 * kMicrosecond;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  k.nic_control().EnableTopTalkers(8);
  k.StartMaintenance();

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto s = Socket::Connect(&k, pid, peer, 4242, {});
  const std::vector<uint8_t> payload(400, 0x5e);
  for (int i = 0; i < 12; ++i) {
    (void)s->Send(payload);
  }
  bed.sim().Run();
  return {tools::TopRender(k, bed.nic()), tools::TopJson(k, bed.nic())};
}

TEST(NormanTopTest, RenderAndJsonAreByteIdenticalAcrossRuns) {
  const auto [text_a, json_a] = RunTopScenario();
  const auto [text_b, json_b] = RunTopScenario();
  EXPECT_EQ(text_a, text_b);
  EXPECT_EQ(json_a, json_b);
}

TEST(NormanTopTest, RenderShowsFlowsQueuesAndHealth) {
  const auto [text, json] = RunTopScenario();
  EXPECT_NE(text.find("flows (on-NIC top talkers):"), std::string::npos);
  EXPECT_NE(text.find("pid=100 (app)"), std::string::npos);
  EXPECT_NE(text.find("queues (depth / high-water):"), std::string::npos);
  EXPECT_NE(text.find("nic.qdisc"), std::string::npos);
  EXPECT_NE(text.find("health:"), std::string::npos);
  EXPECT_NE(json.find("\"flows\":["), std::string::npos);
  EXPECT_NE(json.find("\"health\":{"), std::string::npos);
  EXPECT_NE(json.find("\"queues\":{"), std::string::npos);
}

// ---- Kernel maintenance tick ---------------------------------------------

TEST(MaintenanceTest, TickDrivesSamplerAndParksWhenIdle) {
  workload::TestBedOptions opts;
  opts.echo = true;
  opts.kernel.housekeeping_period = 100 * kMicrosecond;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  k.StartMaintenance();
  EXPECT_TRUE(k.maintenance_running());

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto s = Socket::Connect(&k, pid, peer, 999, {});
  (void)s->Send(std::vector<uint8_t>(200, 1));
  bed.sim().Run();

  // Ticks ran while traffic kept the heap alive, then the timer parked
  // itself instead of spinning the simulation forever.
  EXPECT_GE(k.maintenance_ticks(), 1u);
  EXPECT_GE(k.sampler().samples_taken(), 1u);
  EXPECT_FALSE(k.maintenance_running());
  EXPECT_EQ(k.sampler().samples_taken(), k.maintenance_ticks());
}

}  // namespace
}  // namespace norman
