// Fast-path correctness: the flow verdict cache must change packet *latency*
// and nothing else. Epoch invalidation keeps cached verdicts from outliving
// the configuration that produced them; observer stages (conntrack, sniffer,
// top-talkers) see byte-identical traffic with the cache on or off; and
// eviction under SRAM pressure is a deterministic function of the packet
// sequence. Plus the TopTalkers hot-pointer regression test.
#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/net/packet_builder.h"
#include "src/net/pcap_writer.h"
#include "src/nic/flow_cache.h"
#include "src/nic/pipeline.h"
#include "src/nic/sram.h"
#include "src/nic/top_talkers.h"
#include "src/norman/socket.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using kernel::Chain;
using kernel::kRootUid;
using net::Ipv4Address;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

class FlowCacheTest : public ::testing::Test {
 protected:
  FlowCacheTest() {
    bed_.kernel().processes().AddUser(1, "u");
    pid_ = *bed_.kernel().processes().Spawn(1, "app");
  }

  nic::FlowCache& cache() { return bed_.kernel().nic_control().flow_cache(); }

  workload::TestBed bed_;
  kernel::Pid pid_ = 0;
};

TEST_F(FlowCacheTest, TxFlowHitsAfterFirstPacket) {
  bed_.kernel().nic_control().EnableFlowCache(64);
  auto s = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 4000, {});
  ASSERT_TRUE(s.ok()) << s.status();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(s->Send(std::string(64, 'x')).ok());
  }
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 4u);
  // One miss mints the entry; the rest of the flow rides the fast path.
  EXPECT_EQ(cache().misses(), 1u);
  EXPECT_EQ(cache().hits(), 3u);
  EXPECT_EQ(cache().size(), 1u);
  EXPECT_EQ(cache().sram_bytes(), nic::kFlowCacheEntryBytes);
}

TEST_F(FlowCacheTest, EpochInvalidationMidFlow) {
  bed_.kernel().nic_control().EnableFlowCache(64);
  auto s = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 4000, {});
  ASSERT_TRUE(s.ok()) << s.status();
  ASSERT_TRUE(s->Send(std::string(64, 'x')).ok());
  ASSERT_TRUE(s->Send(std::string(64, 'x')).ok());
  bed_.sim().Run();
  ASSERT_EQ(bed_.egress_frames(), 2u);
  ASSERT_EQ(cache().hits(), 1u);
  const uint64_t epoch_before = cache().epoch();

  // Install a drop rule matching this flow. The cached kAccept entry was
  // minted under the old chain; serving it now would leak the packet out.
  dataplane::FilterRule rule;
  rule.label = "drop-to-4000";
  rule.dst_port = dataplane::PortRange{4000, 4000};
  rule.action = dataplane::FilterAction::kDrop;
  auto idx = bed_.kernel().AppendFilterRule(kRootUid, Chain::kOutput, rule);
  ASSERT_TRUE(idx.ok()) << idx.status();
  EXPECT_GT(cache().epoch(), epoch_before);
  EXPECT_GE(cache().invalidations(), 1u);

  ASSERT_TRUE(s->Send(std::string(64, 'x')).ok());
  bed_.sim().Run();
  // The stale entry was discarded: the packet re-ran the chain and the new
  // rule dropped it. Nothing new left the host.
  EXPECT_EQ(bed_.egress_frames(), 2u);
  EXPECT_EQ(cache().misses(), 2u);

  // The re-minted entry caches the *drop*: further packets hit and are
  // dropped without walking the chain again.
  ASSERT_TRUE(s->Send(std::string(64, 'x')).ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 2u);
  EXPECT_EQ(cache().hits(), 2u);

  // Deleting the rule bumps the epoch again and restores delivery.
  ASSERT_TRUE(bed_.kernel().DeleteFilterRule(kRootUid, Chain::kOutput, *idx)
                  .ok());
  ASSERT_TRUE(s->Send(std::string(64, 'x')).ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 3u);
}

// Everything an observer can see, collected from one scenario run.
struct ObserverView {
  std::vector<uint8_t> pcap;
  std::vector<std::pair<uint64_t, uint64_t>> conntrack;  // packets, bytes
  uint64_t talker_packets = 0;
  uint64_t talker_bytes = 0;
  uint64_t delivered = 0;
  uint64_t dropped = 0;
  std::map<std::string, int64_t> drop_counters;
  uint64_t fastpath_hits = 0;
};

// RX-driven scenario: injection times are fixed by the test, so every
// observable byte — including pcap timestamps — must be identical with the
// fast path on or off. Two flows: one accepted and delivered, one dropped
// by a filter rule (so drop accounting parity is exercised too).
ObserverView RunObserverScenario(bool fastpath) {
  net::ResetIpIdCounterForTest();  // identical frames across both runs
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  k.nic_control().EnableTopTalkers(16);
  EXPECT_TRUE(k.StartCapture(kRootUid).ok());

  auto ok_sock = Socket::Connect(&k, pid, kPeerIp, 5000, {});
  auto drop_sock = Socket::Connect(&k, pid, kPeerIp, 6000, {});
  EXPECT_TRUE(ok_sock.ok() && drop_sock.ok());
  dataplane::FilterRule rule;
  rule.label = "drop-from-6000";
  rule.src_port = dataplane::PortRange{6000, 6000};
  rule.action = dataplane::FilterAction::kDrop;
  EXPECT_TRUE(k.AppendFilterRule(kRootUid, Chain::kInput, rule).ok());

  if (fastpath) {
    k.nic_control().EnableFlowCache(64);
  }

  for (int i = 0; i < 12; ++i) {
    const Nanos when = 1000 + i * 5000;
    bed.InjectUdpFromPeer(5000, ok_sock->tuple().src_port, 100 + i, when);
    bed.InjectUdpFromPeer(6000, drop_sock->tuple().src_port, 50, when + 2000);
  }
  bed.sim().Run();

  ObserverView v;
  v.pcap = k.sniffer().pcap().buffer();
  k.conntrack().ForEach([&v](const dataplane::ConntrackEntry& e) {
    v.conntrack.emplace_back(e.packets, e.bytes);
  });
  for (const auto& t : k.nic_control().top_talkers()->Top(16)) {
    v.talker_packets += t.packets;
    v.talker_bytes += t.bytes;
  }
  while (true) {
    auto data = ok_sock->Recv();
    if (!data.ok() || data->empty()) break;
    ++v.delivered;
  }
  const auto snap = bed.sim().metrics().Snapshot();
  for (const auto& [name, value] : snap.values) {
    if (name.rfind("drop.", 0) == 0) v.drop_counters[name] = value;
  }
  v.fastpath_hits = k.nic_control().flow_cache().hits();
  return v;
}

TEST(FlowCacheParityTest, ObserversSeeIdenticalTrafficCacheOnOrOff) {
  const ObserverView off = RunObserverScenario(/*fastpath=*/false);
  const ObserverView on = RunObserverScenario(/*fastpath=*/true);

  // The fast path actually engaged...
  EXPECT_EQ(off.fastpath_hits, 0u);
  EXPECT_GT(on.fastpath_hits, 0u);

  // ...and no observer can tell. The pcap comparison is byte-for-byte:
  // same frames, same order, same virtual timestamps.
  EXPECT_EQ(off.pcap, on.pcap);
  EXPECT_EQ(off.conntrack, on.conntrack);
  EXPECT_EQ(off.talker_packets, on.talker_packets);
  EXPECT_EQ(off.talker_bytes, on.talker_bytes);
  EXPECT_EQ(off.delivered, on.delivered);
  EXPECT_GT(off.delivered, 0u);
  EXPECT_EQ(off.drop_counters, on.drop_counters);
}

TEST(FlowCacheLruTest, EvictionIsDeterministicUnderPressure) {
  telemetry::MetricsRegistry reg;
  // Room for exactly three entries: the fourth insert must evict.
  nic::SramAllocator sram(3 * nic::kFlowCacheEntryBytes);
  nic::FlowCache fc(&sram, &reg);
  fc.Enable(/*max_entries=*/64);  // bound comes from SRAM, not the table

  auto key = [](uint16_t port) {
    nic::FlowCacheKey k;
    k.direction = net::Direction::kTx;
    k.tuple = net::FiveTuple{Ipv4Address::FromOctets(10, 0, 0, 1), kPeerIp,
                             port, 9999, net::IpProto::kUdp};
    k.conn = 7;
    return k;
  };
  for (uint16_t p = 1; p <= 4; ++p) {
    fc.Insert(key(p), nic::FlowCacheEntry{});
  }
  // LRU: key(1) is the oldest and the one evicted.
  EXPECT_EQ(fc.size(), 3u);
  EXPECT_EQ(fc.evictions(), 1u);
  EXPECT_EQ(fc.Lookup(key(1)), nullptr);
  EXPECT_NE(fc.Lookup(key(4)), nullptr);
  EXPECT_EQ(sram.used(), 3 * nic::kFlowCacheEntryBytes);

  // Touch key(2) so key(3) becomes LRU; the next insert evicts key(3).
  EXPECT_NE(fc.Lookup(key(2)), nullptr);
  fc.Insert(key(5), nic::FlowCacheEntry{});
  EXPECT_EQ(fc.Lookup(key(3)), nullptr);
  EXPECT_NE(fc.Lookup(key(2)), nullptr);
  EXPECT_EQ(fc.evictions(), 2u);

  // Disabling refunds every byte.
  fc.Disable();
  EXPECT_EQ(fc.size(), 0u);
  EXPECT_EQ(sram.used(), 0u);
}

TEST(FlowCacheLruTest, StaleEpochEntriesAreLazilyDiscarded) {
  telemetry::MetricsRegistry reg;
  nic::SramAllocator sram(16 * nic::kFlowCacheEntryBytes);
  nic::FlowCache fc(&sram, &reg);
  fc.Enable(16);
  nic::FlowCacheKey k;
  k.tuple = net::FiveTuple{kPeerIp, kPeerIp, 1, 2, net::IpProto::kUdp};
  fc.Insert(k, nic::FlowCacheEntry{});
  ASSERT_NE(fc.Lookup(k), nullptr);
  fc.Invalidate();
  EXPECT_EQ(fc.Lookup(k), nullptr);  // stale: miss, erased on the spot
  EXPECT_EQ(fc.size(), 0u);
  EXPECT_EQ(sram.used(), 0u);
  EXPECT_EQ(fc.invalidations(), 1u);
}

TEST(TopTalkersTest, HotPointerSurvivesUnrelatedEviction) {
  telemetry::MetricsRegistry reg;
  nic::SramAllocator sram(1 * kKiB);
  nic::TopTalkers tt(&sram, &reg, /*max_entries=*/3);
  auto tuple = [](uint16_t port) {
    return net::FiveTuple{Ipv4Address::FromOctets(10, 0, 0, 1), kPeerIp, port,
                          9999, net::IpProto::kUdp};
  };
  tt.Record(tuple(1), 0, 10, 100);   // smallest: the eviction victim
  tt.Record(tuple(2), 0, 500, 110);
  tt.Record(tuple(3), 0, 900, 120);  // hot_ now points at flow 3
  tt.Record(tuple(4), 0, 700, 130);  // evicts flow 1, NOT the hot flow
  ASSERT_EQ(tt.size(), 3u);
  EXPECT_EQ(tt.evicted(), 1u);
  EXPECT_EQ(tt.Lookup(tuple(1)), nullptr);

  // Regression: the eviction of an unrelated node must not have cleared (or
  // worse, dangled) the hot pointer — back-to-back packets of flow 3 still
  // take the fast lookup and account correctly.
  tt.Record(tuple(3), 0, 900, 140);
  ASSERT_NE(tt.Lookup(tuple(3)), nullptr);
  EXPECT_EQ(tt.Lookup(tuple(3))->packets, 2u);
  EXPECT_EQ(tt.Lookup(tuple(3))->bytes, 1800u);
}

TEST(TopTalkersTest, HotPointerClearedWhenHotEntryEvicted) {
  telemetry::MetricsRegistry reg;
  nic::SramAllocator sram(1 * kKiB);
  nic::TopTalkers tt(&sram, &reg, /*max_entries=*/2);
  auto tuple = [](uint16_t port) {
    return net::FiveTuple{Ipv4Address::FromOctets(10, 0, 0, 1), kPeerIp, port,
                          9999, net::IpProto::kUdp};
  };
  tt.Record(tuple(1), 0, 10, 100);   // hot_ -> flow 1, also the smallest
  tt.Record(tuple(2), 0, 500, 110);  // hot_ -> flow 2
  tt.Record(tuple(1), 0, 10, 120);   // hot_ -> flow 1 again (via tree walk)
  tt.Record(tuple(3), 0, 900, 130);  // evicts flow 1 == the hot entry
  EXPECT_EQ(tt.Lookup(tuple(1)), nullptr);
  // A fresh record of the evicted tuple must build a new entry from zero,
  // not resurrect counts through a dangling hot pointer (ASan guards this).
  tt.Record(tuple(1), 0, 25, 140);
  ASSERT_NE(tt.Lookup(tuple(1)), nullptr);
  EXPECT_EQ(tt.Lookup(tuple(1))->packets, 1u);
  EXPECT_EQ(tt.Lookup(tuple(1))->bytes, 25u);
}

}  // namespace
}  // namespace norman
