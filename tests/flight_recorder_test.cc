// Black-box flight recorder: trigger matching and first-match latching,
// probe auto-arming, the freeze interplay with the tracepoint rings, the
// canned trigger rules, and byte-stable postmortem bundles over a real
// TestBed world.
#include <gtest/gtest.h>

#include <string>

#include "src/common/flight_recorder.h"
#include "src/common/metrics.h"
#include "src/common/tracepoint.h"
#include "src/norman/socket.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using telemetry::FlightRecorder;
using telemetry::Probe;
using telemetry::Tracepoints;
using telemetry::TriggerRule;

TEST(FlightRecorderTest, TriggerRuleMatchesPinnedFields) {
  TriggerRule rule;
  rule.probe = Probe::kNicDrop;
  rule.a0 = 12;
  rule.pid = 5;
  telemetry::TraceRecord rec;
  rec.probe = static_cast<uint16_t>(Probe::kNicDrop);
  rec.a0 = 12;
  rec.pid = 5;
  EXPECT_TRUE(rule.Matches(rec));
  rec.a0 = 11;
  EXPECT_FALSE(rule.Matches(rec));
  rec.a0 = 12;
  rec.pid = 6;
  EXPECT_FALSE(rule.Matches(rec));
  rec.pid = 5;
  rec.probe = static_cast<uint16_t>(Probe::kQdiscDrop);
  EXPECT_FALSE(rule.Matches(rec));
}

TEST(FlightRecorderTest, AddTriggerArmsItsProbe) {
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  FlightRecorder fr(&tp);
  EXPECT_FALSE(tp.armed(Probe::kSramExhausted));
  fr.AddSramExhaustedTrigger();
  EXPECT_TRUE(tp.armed(Probe::kSramExhausted));
}

TEST(FlightRecorderTest, FirstMatchLatchesAndFreezesTheRings) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  FlightRecorder fr(&tp);
  TriggerRule rule;
  rule.name = "third-drop";
  rule.probe = Probe::kNicDrop;
  rule.a0 = 3;
  fr.AddTrigger(rule);
  tp.Arm(Probe::kSramAlloc);

  tp.Emit(Probe::kSramAlloc, 0, 0, 1);  // context before the event
  tp.Emit(Probe::kNicDrop, 0, 0, 1);    // non-matching a0
  tp.Emit(Probe::kNicDrop, 0, 7, 3);    // fires
  EXPECT_TRUE(fr.triggered());
  EXPECT_EQ(fr.fired_trigger(), "third-drop");
  EXPECT_EQ(fr.fired_record().pid, 7u);
  EXPECT_TRUE(tp.frozen());

  // Post-trigger decisions count hits but never enter the journal: the
  // black box preserves the tail that led up to the event.
  tp.Emit(Probe::kNicDrop, 0, 0, 3);
  EXPECT_EQ(tp.Journal().size(), 3u);
  EXPECT_EQ(tp.hits(Probe::kNicDrop), 3u);
  // The latch is first-match-wins: the fired record is unchanged.
  EXPECT_EQ(fr.fired_record().pid, 7u);
}

TEST(FlightRecorderTest, ResetClearsTheLatchAndKeepsTriggers) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  FlightRecorder fr(&tp);
  fr.AddSramExhaustedTrigger();
  tp.Emit(Probe::kSramExhausted, 0, 0, 64, 0);
  ASSERT_TRUE(fr.triggered());
  fr.Reset();
  EXPECT_FALSE(fr.triggered());
  EXPECT_FALSE(tp.frozen());
  ASSERT_EQ(fr.triggers().size(), 1u);
  // The surviving trigger re-fires on the next match.
  tp.Emit(Probe::kSramExhausted, 0, 0, 64, 0);
  EXPECT_TRUE(fr.triggered());
}

TEST(FlightRecorderTest, WatchdogUnhealthyTriggerFiresOnLeavingHealthy) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  FlightRecorder fr(&tp);
  fr.AddWatchdogUnhealthyTrigger();
  // degraded -> stalled: not a departure from healthy, so no fire.
  tp.Emit(Probe::kWatchdogTransition, Tracepoints::kCoreHost, 0,
          /*to=*/2, /*from=*/1);
  EXPECT_FALSE(fr.triggered());
  // healthy -> degraded: fires.
  tp.Emit(Probe::kWatchdogTransition, Tracepoints::kCoreHost, 0,
          /*to=*/1, /*from=*/0);
  EXPECT_TRUE(fr.triggered());
  EXPECT_EQ(fr.fired_trigger(), "watchdog-unhealthy");
}

TEST(FlightRecorderTest, TriggersReportShowsStateAndIsByteStable) {
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  FlightRecorder fr(&tp);
  fr.AddWatchdogUnhealthyTrigger();
  fr.AddDropReasonTrigger("corrupt-frame", 12);
  fr.AddSramExhaustedTrigger();
  const std::string a = fr.TriggersReport();
  EXPECT_EQ(a, fr.TriggersReport());
  EXPECT_NE(a.find("watchdog-unhealthy"), std::string::npos);
  EXPECT_NE(a.find("corrupt-frame"), std::string::npos);
  EXPECT_NE(a.find("armed"), std::string::npos);
  EXPECT_EQ(a.find("FIRED"), std::string::npos);
  if (telemetry::kHotStatsEnabled) {
    tp.Emit(Probe::kSramExhausted, 0, 0);
    EXPECT_NE(fr.TriggersReport().find("FIRED"), std::string::npos);
  }
}

// A small deterministic world that trips the SRAM trigger: the bundle —
// trigger, frozen journal, metrics snapshot, health log, flamegraph — must
// be byte-identical across two independent runs.
std::string RunWorldAndBundle() {
  workload::TestBedOptions opts;
  opts.echo = true;
  opts.kernel.housekeeping_period = 250 * kMicrosecond;
  workload::TestBed bed(opts);
  bed.sim().profiler().set_enabled(true);
  auto& tp = bed.sim().tracepoints();
  auto& fr = bed.sim().flight_recorder();
  fr.AddWatchdogUnhealthyTrigger();
  fr.AddSramExhaustedTrigger();
  tp.ArmAll();

  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  k.StartMaintenance();
  auto sock = Socket::Connect(&k, pid, net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              4242, {});
  EXPECT_TRUE(sock.ok());
  // Hold the remaining SRAM hostage and force a refused allocation.
  auto& cp = k.nic_control();
  (void)cp.InjectSramPressure(cp.sram().available());
  kernel::ConnectOptions fb;
  fb.allow_software_fallback = true;
  auto fallback = Socket::Connect(
      &k, pid, net::Ipv4Address::FromOctets(10, 0, 0, 2), 5353, fb);
  cp.ReleaseSramPressure();
  const std::vector<uint8_t> payload(256, 0xcd);
  for (int i = 0; i < 8; ++i) {
    (void)sock->Send(payload);
  }
  k.StartMaintenance();
  bed.sim().Run();
  return bed.sim().flight_recorder().Bundle(
      bed.sim().metrics(), &bed.kernel().watchdog(), &bed.sim().profiler());
}

TEST(FlightRecorderTest, PostmortemBundleIsByteStableAcrossRuns) {
  const std::string a = RunWorldAndBundle();
  const std::string b = RunWorldAndBundle();
  EXPECT_EQ(a, b);
  // Shape: every section present even when empty.
  EXPECT_EQ(a.rfind("{\"trigger\":", 0), 0u);
  EXPECT_NE(a.find("\"journal\":["), std::string::npos);
  EXPECT_NE(a.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(a.find("\"health\":{"), std::string::npos);
  EXPECT_NE(a.find("\"flame\":"), std::string::npos);
  if (telemetry::kHotStatsEnabled) {
    EXPECT_NE(a.find("\"name\":\"sram-exhausted\""), std::string::npos);
  }
}

TEST(FlightRecorderTest, BundleRendersNullSectionsWithoutWatchdogOrProfiler) {
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  FlightRecorder fr(&tp);
  const std::string bundle = fr.Bundle(reg, nullptr, nullptr);
  EXPECT_EQ(bundle.rfind("{\"trigger\":null", 0), 0u);
  EXPECT_NE(bundle.find("\"health\":null"), std::string::npos);
  EXPECT_NE(bundle.find("\"flame\":null"), std::string::npos);
}

}  // namespace
}  // namespace norman
