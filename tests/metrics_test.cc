// MetricsRegistry: handle identity, snapshot/delta semantics, deterministic
// export shape, the manifest inventory, and pool import.
#include <gtest/gtest.h>

#include <string>

#include "src/common/metrics.h"

namespace norman::telemetry {
namespace {

TEST(MetricsRegistryTest, GetOrCreateReturnsSameHandle) {
  MetricsRegistry reg;
  Counter* a = reg.GetCounter("nic.rx.frames");
  Counter* b = reg.GetCounter("nic.rx.frames");
  EXPECT_EQ(a, b);
  a->Increment(3);
  EXPECT_EQ(b->value(), 3u);
  EXPECT_EQ(a->name(), "nic.rx.frames");

  Gauge* g1 = reg.GetGauge("pool.packet.outstanding");
  Gauge* g2 = reg.GetGauge("pool.packet.outstanding");
  EXPECT_EQ(g1, g2);
  LatencyHistogram* h1 = reg.GetHistogram("trace.stage.tx.wire");
  LatencyHistogram* h2 = reg.GetHistogram("trace.stage.tx.wire");
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(reg.num_metrics(), 3u);
}

TEST(MetricsRegistryTest, HandleAddressesSurviveMoreRegistrations) {
  MetricsRegistry reg;
  Counter* first = reg.GetCounter("a.first");
  first->Increment();
  // Registering many more metrics must not invalidate the earlier pointer.
  for (int i = 0; i < 200; ++i) {
    reg.GetCounter("bulk.counter." + std::to_string(i));
  }
  EXPECT_EQ(first, reg.GetCounter("a.first"));
  EXPECT_EQ(first->value(), 1u);
}

TEST(MetricsRegistryTest, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_EQ(reg.FindGauge("missing"), nullptr);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);
  EXPECT_EQ(reg.num_metrics(), 0u);
  reg.GetCounter("present");
  EXPECT_NE(reg.FindCounter("present"), nullptr);
}

TEST(MetricsRegistryTest, SnapshotDelta) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("nic.tx.seen");
  Gauge* g = reg.GetGauge("queue.depth");
  c->Increment(10);
  g->Set(5);
  const MetricsSnapshot before = reg.Snapshot();
  c->Increment(7);
  g->Set(2);
  reg.GetCounter("registered.later")->Increment(4);
  const MetricsSnapshot after = reg.Snapshot();

  const MetricsSnapshot delta = MetricsRegistry::Delta(before, after);
  EXPECT_EQ(delta.values.at("nic.tx.seen"), 7);
  EXPECT_EQ(delta.values.at("queue.depth"), -3);
  // Metrics born between snapshots delta against zero.
  EXPECT_EQ(delta.values.at("registered.later"), 4);
}

TEST(MetricsRegistryTest, TextReportIsSortedAndShapeStable) {
  MetricsRegistry reg;
  reg.GetCounter("b.two")->Increment(2);
  reg.GetCounter("a.one");  // zero-valued, still reported
  reg.GetGauge("c.three")->Set(-3);
  const std::string text = reg.TextReport();
  const auto pos_a = text.find("a.one 0");
  const auto pos_b = text.find("b.two 2");
  const auto pos_c = text.find("c.three -3");
  ASSERT_NE(pos_a, std::string::npos) << text;
  ASSERT_NE(pos_b, std::string::npos) << text;
  ASSERT_NE(pos_c, std::string::npos) << text;
  EXPECT_LT(pos_a, pos_b);
  EXPECT_LT(pos_b, pos_c);
}

TEST(MetricsRegistryTest, JsonReportShape) {
  MetricsRegistry reg;
  reg.GetCounter("nic.rx.seen")->Increment(12);
  reg.GetGauge("pool.packet.outstanding")->Set(4);
  reg.GetHistogram("trace.stage.rx.dma")->Add(1500);
  const std::string json = reg.JsonReport();
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"nic.rx.seen\":12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"gauges\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"pool.packet.outstanding\":4"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace.stage.rx.dma\":{"), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos) << json;
  // Byte-stable across calls.
  EXPECT_EQ(json, reg.JsonReport());
}

TEST(MetricsRegistryTest, MetricNamesInventory) {
  MetricsRegistry reg;
  reg.GetGauge("z.gauge");
  reg.GetCounter("a.counter");
  reg.GetHistogram("m.hist");
  const auto names = reg.MetricNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "counter a.counter");
  EXPECT_EQ(names[1], "gauge z.gauge");
  EXPECT_EQ(names[2], "histogram m.hist");
}

TEST(MetricsRegistryTest, ImportPoolMirrorsAndOverwrites) {
  MetricsRegistry reg;
  PoolCounters pc{"packet"};
  pc.hits = 10;
  pc.misses = 2;
  pc.outstanding = 4;
  pc.high_water = 6;
  reg.ImportPool(pc);
  EXPECT_EQ(reg.GetGauge("pool.packet.hits")->value(), 10);
  EXPECT_EQ(reg.GetGauge("pool.packet.outstanding")->value(), 4);
  // Re-import overwrites (levels, not accumulation).
  pc.hits = 11;
  pc.outstanding = 1;
  reg.ImportPool(pc);
  EXPECT_EQ(reg.GetGauge("pool.packet.hits")->value(), 11);
  EXPECT_EQ(reg.GetGauge("pool.packet.outstanding")->value(), 1);
}

TEST(MetricsRegistryTest, ResetAllKeepsRegistrations) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("nic.tx.seen");
  c->Increment(9);
  reg.GetHistogram("h")->Add(100);
  reg.ResetAll();
  EXPECT_EQ(c, reg.GetCounter("nic.tx.seen"));  // same handle
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(reg.GetHistogram("h")->count(), 0u);
  EXPECT_EQ(reg.num_metrics(), 2u);
}

// ---- Stats tiers and batched accumulators ---------------------------------
// These run at whichever NORMAN_STATS_LEVEL the binary was built with (CI
// builds both), so the assertions condition on kHotStatsEnabled: at level 1
// the hot tier must be exact, at level 0 it must be a complete no-op —
// while registration and the direct Counter API stay live at both levels.

TEST(StatsTierTest, HotIncrementFollowsCompiledTier) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("tier.probe");
  HotIncrement(c);
  HotIncrement(c, 4);
  EXPECT_EQ(c->value(), kHotStatsEnabled ? 5u : 0u);
  // The registry entry itself exists at every level (manifest shape is
  // tier-independent) and direct increments always count.
  EXPECT_NE(reg.FindCounter("tier.probe"), nullptr);
  c->Increment(2);
  EXPECT_EQ(c->value(), kHotStatsEnabled ? 7u : 2u);
}

TEST(StatsTierTest, HotQueueGaugeUpdatesFollowCompiledTier) {
  MetricsRegistry reg;
  QueueDepthGauges g(&reg, "tier");
  HotAdd(&g, 3);
  HotSet(&g, 7);
  HotAdd(&g, -2);
  if (kHotStatsEnabled) {
    EXPECT_EQ(g.depth(), 5);
    EXPECT_EQ(g.high_water(), 7);
  } else {
    EXPECT_EQ(g.depth(), 0);
    EXPECT_EQ(g.high_water(), 0);
  }
  // The ungated QueueDepthGauges API still works at level 0 (cold-path
  // users like the monitor's unit tests rely on it).
  g.Set(9);
  EXPECT_EQ(reg.FindGauge("queue.tier.depth")->value(), 9);
}

TEST(BatchedCounterTest, AccumulatesLocallyAndFlushesOnce) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("burst.probe");
  {
    BatchedCounter acc(c);
    acc.Add();
    acc.Add(3);
    // Nothing hits the shared counter until a flush.
    EXPECT_EQ(c->value(), 0u);
    EXPECT_EQ(acc.pending(), kHotStatsEnabled ? 4u : 0u);
    acc.Flush();
    EXPECT_EQ(c->value(), kHotStatsEnabled ? 4u : 0u);
    acc.Add(2);
  }  // destructor flushes the tail
  EXPECT_EQ(c->value(), kHotStatsEnabled ? 6u : 0u);
}

TEST(BatchedCounterTest, EmptyBurstNeverTouchesCounter) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("burst.empty");
  c->Increment(11);
  {
    BatchedCounter acc(c);
    acc.Flush();
  }
  EXPECT_EQ(c->value(), 11u);
}

}  // namespace
}  // namespace norman::telemetry
