// End-to-end Socket tests over the TestBed echo network: POSIX-ish send/
// recv, zero-copy frames, blocking send, and stats.
#include "src/norman/socket.h"

#include <gtest/gtest.h>

#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using kernel::ConnectOptions;
using net::Ipv4Address;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

class SocketTest : public ::testing::Test {
 protected:
  SocketTest() : bed_(EchoOptions()) {
    bed_.kernel().processes().AddUser(1001, "bob");
    pid_ = *bed_.kernel().processes().Spawn(1001, "client");
  }

  static workload::TestBedOptions EchoOptions() {
    workload::TestBedOptions o;
    o.echo = true;
    return o;
  }

  workload::TestBed bed_;
  kernel::Pid pid_ = 0;
};

TEST_F(SocketTest, UdpEchoRoundTrip) {
  ConnectOptions opts;
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 9000, opts);
  ASSERT_TRUE(sock.ok()) << sock.status();

  const std::string msg = "ping over norman";
  ASSERT_TRUE(sock->Send(msg).ok());
  bed_.sim().Run();

  auto data = sock->Recv();
  ASSERT_TRUE(data.ok()) << data.status();
  EXPECT_EQ(std::string(data->begin(), data->end()), msg);
  EXPECT_EQ(sock->stats().tx_packets, 1u);
  EXPECT_EQ(sock->stats().rx_packets, 1u);
}

TEST_F(SocketTest, RecvOnEmptyIsUnavailable) {
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 9001, {});
  ASSERT_TRUE(sock.ok());
  EXPECT_EQ(sock->Recv().status().code(), StatusCode::kUnavailable);
}

TEST_F(SocketTest, TcpFramingRoundTrip) {
  ConnectOptions opts;
  opts.proto = net::IpProto::kTcp;
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 9100, opts);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("segment").ok());
  bed_.sim().Run();
  auto data = sock->Recv();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(std::string(data->begin(), data->end()), "segment");
}

TEST_F(SocketTest, ZeroCopyFrameInterface) {
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 9200, {});
  ASSERT_TRUE(sock.ok());

  net::PacketPtr frame = sock->AllocFrame(64);
  auto payload = Socket::Payload(*frame);
  ASSERT_EQ(payload.size(), 64u);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<uint8_t>(i);
  }
  ASSERT_TRUE(sock->SendFrame(std::move(frame)).ok());
  bed_.sim().Run();

  net::PacketPtr rx = sock->RecvFrame();
  ASSERT_NE(rx, nullptr);
  auto rx_payload = Socket::Payload(*rx);
  ASSERT_EQ(rx_payload.size(), 64u);
  for (size_t i = 0; i < rx_payload.size(); ++i) {
    EXPECT_EQ(rx_payload[i], static_cast<uint8_t>(i));
  }
}

TEST_F(SocketTest, ManyPacketsAllEchoed) {
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 9300, {});
  ASSERT_TRUE(sock.ok());
  workload::CbrSender sender(&bed_.sim(), &*sock, 100, 10 * kMicrosecond);
  sender.Start(0, 2 * kMillisecond);
  bed_.sim().Run();
  EXPECT_EQ(sender.sent(), 200u);
  size_t received = 0;
  while (sock->RecvFrame() != nullptr) {
    ++received;
  }
  EXPECT_EQ(received, 200u);
}

TEST_F(SocketTest, SendBlockingCompletesAfterDrain) {
  ConnectOptions opts;
  opts.notify_tx_drain = true;
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 9400, opts);
  ASSERT_TRUE(sock.ok());

  // Fill the TX ring beyond capacity without letting the sim drain it.
  int immediate_fails = 0;
  for (int i = 0; i < 300; ++i) {
    if (!sock->Send(std::string(100, 'x')).ok()) {
      ++immediate_fails;
    }
  }
  EXPECT_GT(immediate_fails, 0);  // ring (256) filled

  Status completion = InternalError("never ran");
  ASSERT_TRUE(sock->SendBlocking(std::vector<uint8_t>(100, 'y'),
                                 [&](Status s) { completion = s; })
                  .ok());
  EXPECT_FALSE(completion.ok());  // still parked
  bed_.sim().Run();               // NIC drains, notification wakes sender
  EXPECT_TRUE(completion.ok()) << completion;
}

TEST_F(SocketTest, CloseInvalidatesSocket) {
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 9500, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Close().ok());
  EXPECT_FALSE(sock->valid());
  EXPECT_EQ(sock->Send("x").code(), StatusCode::kFailedPrecondition);
}

TEST_F(SocketTest, StatsTrackTraffic) {
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 9600, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("aaaa").ok());
  ASSERT_TRUE(sock->Send("bbbb").ok());
  bed_.sim().Run();
  (void)sock->Recv();
  EXPECT_EQ(sock->stats().tx_packets, 2u);
  EXPECT_GT(sock->stats().tx_bytes, 8u);  // includes headers
  EXPECT_EQ(sock->stats().rx_packets, 1u);
}

TEST_F(SocketTest, FlowTableCountersUpdate) {
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 9700, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("counted").ok());
  bed_.sim().Run();
  const auto conns = bed_.kernel().ListConnections();
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0].tx_packets, 1u);
  EXPECT_EQ(conns[0].rx_packets, 1u);  // echo came back
  EXPECT_GT(conns[0].tx_bytes, 0u);
}

}  // namespace
}  // namespace norman
