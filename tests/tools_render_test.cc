// Golden-string tests for the tool renderers. The scenario is fixed and
// virtual time is deterministic, so the full rendered output is pinned
// byte-for-byte: any change to the stat or iptables rendering (or to the
// dataplane timing feeding it) must update these goldens deliberately.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/net/packet_builder.h"
#include "src/net/packet_pool.h"
#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

constexpr auto kPeerIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);

// Fixed traffic: 4 accepted UDP sends (echoed), 3 filtered sends, 2
// unmatched peer datagrams, 1 unparseable runt frame.
class RenderFixture : public ::testing::Test {
 protected:
  RenderFixture() {
    workload::TestBedOptions opts;
    opts.echo = true;
    bed_ = std::make_unique<workload::TestBed>(opts);
    auto& k = bed_->kernel();
    k.processes().AddUser(1001, "alice");
    k.processes().AddUser(1002, "bob");
    const auto web_pid = *k.processes().Spawn(1001, "webapp");
    const auto batch_pid = *k.processes().Spawn(1002, "batch");

    EXPECT_TRUE(tools::IptablesAppend(&k, kernel::kRootUid,
                                      "-A OUTPUT -p udp --dport 7777 "
                                      "-j ACCEPT")
                    .ok());
    EXPECT_TRUE(tools::IptablesAppend(&k, kernel::kRootUid,
                                      "-A OUTPUT -p udp --dport 9999 -j DROP")
                    .ok());

    auto good = Socket::Connect(&k, web_pid, kPeerIp, 7777, {});
    auto bad = Socket::Connect(&k, batch_pid, kPeerIp, 9999, {});
    EXPECT_TRUE(good.ok());
    EXPECT_TRUE(bad.ok());
    const std::vector<uint8_t> payload(200, 0xab);
    for (int i = 0; i < 4; ++i) {
      EXPECT_TRUE(good->Send(payload).ok());
    }
    for (int i = 0; i < 3; ++i) {
      EXPECT_TRUE(bad->Send(payload).ok());
    }
    bed_->sim().Run();
    Nanos t = bed_->sim().Now();
    bed_->InjectUdpFromPeer(1234, 4321, 64, t += kMicrosecond);
    bed_->InjectUdpFromPeer(1234, 4321, 64, t += kMicrosecond);
    bed_->InjectFromNetwork(net::MakePacket(std::vector<uint8_t>(6, 0xee)),
                            t += kMicrosecond);
    bed_->sim().Run();
  }

  std::unique_ptr<workload::TestBed> bed_;
};

TEST_F(RenderFixture, NicStatGolden) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "golden renders hot-tier volume counters, which compile "
                    "to no-ops at NORMAN_STATS_LEVEL=0";
  }
  const std::string got = tools::NicStat(bed_->kernel(), bed_->nic());
  const std::string want =
      "NIC statistics (virtual time 8.58us):\n"
      "  tx: seen 7, accepted 4, filtered 3, sched-drop 0, sw-fallback 0, "
      "wire bytes 968\n"
      "  rx: seen 7, accepted 4, filtered 0, unmatched 3, ring-overflow 0, "
      "sw-fallback 0\n"
      "  dma transfers 11, overlay instructions 94\n"
      "  drops by reason (owner-annotated):\n"
      "    tx filter_deny pid=101 (batch): 3\n"
      "  ddio: 72.7% hit (8/11), resident 6144 B of 4194304 B\n"
      "  sram: 1088 / 8388608 B  conntrack=192  flow_table=768  "
      "ring_state=128\n"
      "  utilization: wire 0.9%, pipeline 1.1%, dma 11.6%, kernel-core "
      "0.0%\n";
  EXPECT_EQ(got, want) << "---- actual ----\n" << got;
}

TEST_F(RenderFixture, NicStatDropsGolden) {
  const std::string got = tools::NicStatDrops(bed_->kernel(), bed_->nic());
  const std::string want =
      "Drop accounting (virtual time 8.58us):\n"
      "  reason                  tx        rx\n"
      "  filter_deny              3         0\n"
      "  total                    3         0\n"
      "  drops by reason (owner-annotated):\n"
      "    tx filter_deny pid=101 (batch): 3\n"
      "  kernel slow path: malformed 1, unmatched 2, sram_exhausted 0\n";
  EXPECT_EQ(got, want) << "---- actual ----\n" << got;
}

TEST_F(RenderFixture, IptablesListGolden) {
  const std::string got = tools::IptablesList(bed_->kernel());
  const std::string want =
      "Chain INPUT (policy ACCEPT, 7 default hits)\n"
      "Chain OUTPUT (policy ACCEPT, 0 default hits)\n"
      "  [0] ACCEPT -p udp --dport 7777:7777  [4 hits]\n"
      "  [1] DROP -p udp --dport 9999:9999  [3 hits]\n";
  EXPECT_EQ(got, want) << "---- actual ----\n" << got;
}

}  // namespace
}  // namespace norman
