// Robustness: random and malformed input must never crash or corrupt the
// system — fuzzed frame parsing, garbage through the full NIC RX path,
// packet-conservation invariants under randomized workloads, and random
// socket operation sequences.
#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/net/parsed_packet.h"
#include "src/norman/socket.h"
#include "src/overlay/interpreter.h"
#include "src/overlay/verifier.h"
#include "src/workload/testbed.h"
#include "src/net/packet_pool.h"

namespace norman {
namespace {

using net::Ipv4Address;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

std::vector<uint8_t> RandomBytes(Rng& rng, size_t max_len) {
  std::vector<uint8_t> bytes(rng.NextBounded(max_len + 1));
  for (auto& b : bytes) {
    b = static_cast<uint8_t>(rng.NextU64());
  }
  return bytes;
}

// Random bytes with a plausible Ethernet+IPv4 prelude so parsing goes deep.
std::vector<uint8_t> SemiValidFrame(Rng& rng) {
  auto bytes = RandomBytes(rng, 200);
  if (bytes.size() >= 14 && rng.NextBool(0.7)) {
    bytes[12] = 0x08;
    bytes[13] = rng.NextBool(0.5) ? 0x00 : 0x06;  // IPv4 or ARP
    if (bytes.size() >= 34 && bytes[13] == 0x00 && rng.NextBool(0.7)) {
      bytes[14] = 0x45;  // version/IHL
      bytes[23] = rng.NextBool(0.5) ? 17 : 6;  // proto
    }
  }
  return bytes;
}

TEST(FuzzTest, ParseFrameNeverCrashesOrOverreads) {
  Rng rng(0xfeed);
  for (int i = 0; i < 20000; ++i) {
    const auto bytes = SemiValidFrame(rng);
    auto parsed = net::ParseFrame(bytes);
    if (!parsed.has_value()) {
      continue;
    }
    // Offsets must stay inside the frame.
    EXPECT_LE(parsed->l3_offset, bytes.size());
    EXPECT_LE(parsed->l4_offset, bytes.size());
    EXPECT_LE(parsed->payload_offset, bytes.size());
    EXPECT_EQ(parsed->frame_size, bytes.size());
    if (parsed->flow()) {
      EXPECT_TRUE(parsed->is_ipv4());
    }
  }
}

TEST(FuzzTest, GarbageThroughNicRxPathIsSafe) {
  workload::TestBed bed;
  bed.kernel().processes().AddUser(1, "u");
  const auto pid = *bed.kernel().processes().Spawn(1, "app");
  auto sock = Socket::Connect(&bed.kernel(), pid, kPeerIp, 5000, {});
  ASSERT_TRUE(sock.ok());
  (void)bed.kernel().StartCapture(kernel::kRootUid);  // sniffer on, too

  Rng rng(0xbeef);
  Nanos t = 0;
  for (int i = 0; i < 2000; ++i) {
    t += rng.NextBounded(1000) + 1;
    bed.InjectFromNetwork(
        net::MakePacket(SemiValidFrame(rng)), t);
  }
  bed.sim().Run();
  // Everything was either dropped, unmatched, or (rarely) delivered —
  // but accounted for.
  const auto& stats = bed.nic().stats();
  EXPECT_EQ(stats.rx_seen(), telemetry::HotCount(2000));
  // The conservation equation mixes hot-tier volume counters with the
  // always-exact drop counters, so it only balances when the hot tier is
  // compiled in.
  if (telemetry::kHotStatsEnabled) {
    EXPECT_EQ(stats.rx_seen(), stats.rx_accepted() + stats.rx_dropped() +
                                 stats.rx_fallback() + stats.rx_unmatched() +
                                 stats.rx_ring_overflow());
  }
}

TEST(FuzzTest, OverlayInterpreterSafeOnRandomVerifiedPrograms) {
  // Random instruction streams that pass the verifier must execute without
  // error on arbitrary contexts.
  Rng rng(0xabcd);
  const std::vector<uint8_t> frame = SemiValidFrame(rng);
  auto parsed = net::ParseFrame(frame);
  overlay::PacketContext ctx;
  ctx.frame = frame;
  ctx.parsed = parsed ? &*parsed : nullptr;

  int verified = 0;
  for (int trial = 0; trial < 5000; ++trial) {
    overlay::Program prog;
    const size_t len = 1 + rng.NextBounded(20);
    for (size_t i = 0; i + 1 < len; ++i) {
      overlay::Instruction ins;
      switch (rng.NextBounded(6)) {
        case 0:
          ins = overlay::Instruction::Ldi(
              static_cast<uint8_t>(rng.NextBounded(16)),
              static_cast<int64_t>(rng.NextBounded(1000)));
          break;
        case 1:
          ins = overlay::Instruction::Ldf(
              static_cast<uint8_t>(rng.NextBounded(16)),
              static_cast<overlay::Field>(rng.NextBounded(20)));
          break;
        case 2:
          ins = overlay::Instruction::Ldb(
              static_cast<uint8_t>(rng.NextBounded(16)),
              static_cast<int64_t>(rng.NextBounded(256)));
          break;
        case 3:
          ins = overlay::Instruction::AluImm(
              overlay::Opcode::kAdd,
              static_cast<uint8_t>(rng.NextBounded(16)),
              static_cast<int64_t>(rng.NextBounded(100)));
          break;
        case 4:
          ins = overlay::Instruction::AluImm(
              overlay::Opcode::kShr,
              static_cast<uint8_t>(rng.NextBounded(16)),
              static_cast<int64_t>(rng.NextBounded(64)));
          break;
        default:
          ins = overlay::Instruction::JmpCmpImm(
              overlay::Opcode::kJeq,
              static_cast<uint8_t>(rng.NextBounded(16)),
              static_cast<int64_t>(rng.NextBounded(10)),
              static_cast<int64_t>(i + 1 + rng.NextBounded(len - i - 1)));
          break;
      }
      prog.push_back(ins);
    }
    prog.push_back(overlay::Instruction::RetReg(
        static_cast<uint8_t>(rng.NextBounded(16))));
    if (!overlay::VerifyProgram(prog).ok()) {
      continue;
    }
    ++verified;
    auto result = overlay::Execute(prog, ctx);
    ASSERT_TRUE(result.ok()) << result.status();
    EXPECT_LE(result->instructions_executed, prog.size());
  }
  EXPECT_GT(verified, 1000);  // the generator mostly emits valid programs
}

TEST(InvariantTest, TxPacketConservationUnderRandomWorkload) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");

  // A drop rule for some traffic, a fallback rule for other traffic.
  dataplane::FilterRule drop;
  drop.dst_port = dataplane::PortRange{100, 199};
  drop.action = dataplane::FilterAction::kDrop;
  dataplane::FilterRule fallback;
  fallback.dst_port = dataplane::PortRange{200, 299};
  fallback.action = dataplane::FilterAction::kSoftwareFallback;
  ASSERT_TRUE(k.AppendFilterRule(kernel::kRootUid, kernel::Chain::kOutput,
                                 drop)
                  .ok());
  ASSERT_TRUE(k.AppendFilterRule(kernel::kRootUid, kernel::Chain::kOutput,
                                 fallback)
                  .ok());

  Rng rng(0x1234);
  std::vector<Socket> socks;
  for (int i = 0; i < 20; ++i) {
    const auto port = static_cast<uint16_t>(50 + rng.NextBounded(300));
    auto s = Socket::Connect(&k, pid, kPeerIp, port, {});
    ASSERT_TRUE(s.ok());
    socks.push_back(std::move(*s));
  }
  int sent = 0;
  for (int round = 0; round < 50; ++round) {
    for (auto& s : socks) {
      if (rng.NextBool(0.7)) {
        if (s.Send(std::vector<uint8_t>(rng.NextBounded(800), 1)).ok()) {
          ++sent;
        }
      }
    }
    bed.sim().Run();
  }
  const auto& stats = bed.nic().stats();
  // Volume-counter invariants need the hot stats tier compiled in; the
  // drop-counter floor below stays exact at every level.
  if (telemetry::kHotStatsEnabled) {
    // Fallback TX packets re-enter the pipeline once (marked), so tx_seen
    // counts them twice.
    EXPECT_EQ(stats.tx_seen(),
              static_cast<uint64_t>(sent) + stats.tx_fallback());
    EXPECT_EQ(stats.tx_seen(),
              stats.tx_accepted() + stats.tx_dropped() + stats.tx_fallback() +
                  stats.tx_sched_dropped());
    // Everything accepted eventually hit the wire (sim ran to quiescence).
    EXPECT_EQ(bed.egress_frames(), stats.tx_accepted());
    EXPECT_GT(stats.tx_fallback(), 0u);
  }
  EXPECT_GT(stats.tx_dropped(), 0u);
}

TEST(InvariantTest, RandomSocketOpSequenceNeverWedges) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "fuzz");

  Rng rng(0x777);
  std::vector<Socket> socks;
  uint16_t next_port = 1000;
  for (int op = 0; op < 3000; ++op) {
    const auto choice = rng.NextBounded(10);
    if (choice < 2 && socks.size() < 30) {
      auto s = Socket::Connect(&k, pid, kPeerIp, next_port++, {});
      if (s.ok()) {
        socks.push_back(std::move(*s));
      }
    } else if (choice < 6 && !socks.empty()) {
      auto& s = socks[rng.NextBounded(socks.size())];
      (void)s.Send(std::vector<uint8_t>(rng.NextBounded(500), 2));
    } else if (choice < 8 && !socks.empty()) {
      auto& s = socks[rng.NextBounded(socks.size())];
      (void)s.Recv();
    } else if (choice == 8 && !socks.empty()) {
      const size_t victim = rng.NextBounded(socks.size());
      (void)socks[victim].Close();
      socks.erase(socks.begin() + static_cast<ptrdiff_t>(victim));
    } else {
      bed.sim().RunUntil(bed.sim().Now() + rng.NextBounded(10000));
    }
  }
  bed.sim().Run();
  // Terminal sanity: remaining sockets still function.
  for (auto& s : socks) {
    EXPECT_TRUE(s.valid());
  }
  SUCCEED();
}

}  // namespace
}  // namespace norman
