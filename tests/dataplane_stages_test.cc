// Sniffer, NAT, conntrack, and ARP service tests.
#include <gtest/gtest.h>

#include "src/dataplane/arp_service.h"
#include "src/dataplane/conntrack.h"
#include "src/dataplane/nat.h"
#include "src/dataplane/sniffer.h"
#include "src/net/pcap_writer.h"
#include "tests/test_util.h"

namespace norman::dataplane {
namespace {

using net::Direction;
using net::IpProto;
using net::Ipv4Address;
using net::TcpFlags;
using overlay::ConnMetadata;
using test::MakeTcpContext;
using test::MakeUdpContext;

// --- SnifferTap ---

TEST(SnifferTest, CapturesNothingWhileStopped) {
  sim::Simulator sim;
  SnifferTap tap(&sim);
  auto pkt = MakeUdpContext(1, 2, Direction::kTx);
  tap.Process(pkt->packet, pkt->ctx);
  EXPECT_EQ(tap.captured(), 0u);
}

TEST(SnifferTest, CapturesWithProcessView) {
  sim::Simulator sim;
  SnifferTap tap(&sim);
  tap.Start();
  auto pkt = MakeUdpContext(5555, 80, Direction::kTx,
                            ConnMetadata{9, 1001, 4242, 3, 7});
  const auto result = tap.Process(pkt->packet, pkt->ctx);
  EXPECT_EQ(result.verdict, nic::Verdict::kAccept);  // taps never drop
  ASSERT_EQ(tap.captured(), 1u);
  const CaptureRecord& rec = tap.records()[0];
  EXPECT_EQ(rec.owner.owner_uid, 1001u);
  EXPECT_EQ(rec.owner.owner_pid, 4242u);
  EXPECT_EQ(rec.src_port, 5555);
  EXPECT_EQ(rec.dst_port, 80);
  EXPECT_EQ(rec.ip_proto, 17);
  EXPECT_EQ(rec.direction, Direction::kTx);
}

TEST(SnifferTest, PcapOutputIsParseable) {
  sim::Simulator sim;
  SnifferTap tap(&sim, /*snaplen=*/64);
  tap.Start();
  auto p1 = MakeUdpContext(1, 2, Direction::kTx, {}, /*payload=*/100);
  auto p2 = MakeUdpContext(3, 4, Direction::kRx, {}, /*payload=*/10);
  tap.Process(p1->packet, p1->ctx);
  tap.Process(p2->packet, p2->ctx);
  auto records = net::ParsePcap(tap.pcap().buffer());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].original_length, p1->frame.size());
  EXPECT_LE((*records)[0].bytes.size(), 64u);  // snaplen truncation
}

TEST(SnifferTest, OverlayFilterSelectsTraffic) {
  sim::Simulator sim;
  SnifferTap tap(&sim);
  tap.Start();
  // Capture only ARP frames ("tcpdump arp").
  overlay::Program arp_only{
      overlay::Instruction::Ldf(1, overlay::Field::kIsArp),
      overlay::Instruction::RetReg(1),
  };
  ASSERT_TRUE(tap.SetFilter(arp_only).ok());

  auto udp = MakeUdpContext(1, 2, Direction::kTx);
  tap.Process(udp->packet, udp->ctx);
  EXPECT_EQ(tap.captured(), 0u);

  auto arp_frame = net::BuildArpRequest(net::MacAddress::ForHost(3),
                                        test::kLocalIp, test::kRemoteIp);
  net::Packet arp_packet(arp_frame);
  auto parsed = *net::ParseFrame(arp_packet.bytes());
  overlay::PacketContext ctx;
  ctx.frame = arp_packet.bytes();
  ctx.parsed = &parsed;
  ctx.direction = Direction::kTx;
  tap.Process(arp_packet, ctx);
  EXPECT_EQ(tap.captured(), 1u);
  EXPECT_TRUE(tap.records()[0].is_arp_request);
}

TEST(SnifferTest, RejectsInvalidFilter) {
  sim::Simulator sim;
  SnifferTap tap(&sim);
  overlay::Program bad{overlay::Instruction::Ldi(1, 0)};  // falls off end
  EXPECT_FALSE(tap.SetFilter(bad).ok());
}

TEST(SnifferTest, ClearResetsCapture) {
  sim::Simulator sim;
  SnifferTap tap(&sim);
  tap.Start();
  auto pkt = MakeUdpContext(1, 2, Direction::kTx);
  tap.Process(pkt->packet, pkt->ctx);
  tap.Clear();
  EXPECT_EQ(tap.captured(), 0u);
  auto records = net::ParsePcap(tap.pcap().buffer());
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

// --- NatEngine ---

class NatTest : public ::testing::Test {
 protected:
  NatTest()
      : sram_(1 * kMiB),
        nat_(&sram_, Ipv4Address::FromOctets(10, 0, 0, 0), 8,
             Ipv4Address::FromOctets(203, 0, 113, 7)) {}

  nic::SramAllocator sram_;
  NatEngine nat_;
};

TEST_F(NatTest, TxRewritesSourceToPublic) {
  auto pkt = MakeUdpContext(5000, 80, Direction::kTx);
  const auto r = nat_.Process(pkt->packet, pkt->ctx);
  EXPECT_EQ(r.verdict, nic::Verdict::kAccept);
  auto parsed = net::ParseFrame(pkt->packet.bytes());
  EXPECT_EQ(parsed->ipv4->src, Ipv4Address::FromOctets(203, 0, 113, 7));
  EXPECT_NE(parsed->udp->src_port, 5000);  // allocated public port
  EXPECT_GE(parsed->udp->src_port, 20000);
  EXPECT_EQ(nat_.tx_translated(), 1u);
  EXPECT_EQ(nat_.active_mappings(), 1u);
  // Checksums stay valid after rewrite.
  EXPECT_TRUE(net::Ipv4Header::ChecksumValid(
      pkt->packet.bytes().subspan(net::kEthernetHeaderSize)));
}

TEST_F(NatTest, RxReverseTranslates) {
  auto out = MakeUdpContext(5000, 80, Direction::kTx);
  nat_.Process(out->packet, out->ctx);
  auto parsed_out = net::ParseFrame(out->packet.bytes());
  const uint16_t public_port = parsed_out->udp->src_port;

  // Build the reply addressed to the public endpoint.
  net::FrameEndpoints reply_ep{net::MacAddress::ForHost(2),
                               net::MacAddress::ForHost(1), test::kRemoteIp,
                               Ipv4Address::FromOctets(203, 0, 113, 7)};
  auto reply_frame = net::BuildUdpFrame(reply_ep, 80, public_port,
                                        std::vector<uint8_t>(8, 1));
  net::Packet reply(reply_frame);
  auto parsed = *net::ParseFrame(reply.bytes());
  overlay::PacketContext ctx;
  ctx.frame = reply.bytes();
  ctx.parsed = &parsed;
  ctx.direction = Direction::kRx;
  nat_.Process(reply, ctx);

  auto translated = net::ParseFrame(reply.bytes());
  EXPECT_EQ(translated->ipv4->dst, test::kLocalIp);  // 10.0.0.1
  EXPECT_EQ(translated->udp->dst_port, 5000);
  EXPECT_EQ(nat_.rx_translated(), 1u);
}

TEST_F(NatTest, StableMappingPerFlow) {
  auto p1 = MakeUdpContext(5000, 80, Direction::kTx);
  auto p2 = MakeUdpContext(5000, 80, Direction::kTx);
  nat_.Process(p1->packet, p1->ctx);
  nat_.Process(p2->packet, p2->ctx);
  EXPECT_EQ(nat_.active_mappings(), 1u);  // one flow, one mapping
  const auto a = net::ParseFrame(p1->packet.bytes())->udp->src_port;
  const auto b = net::ParseFrame(p2->packet.bytes())->udp->src_port;
  EXPECT_EQ(a, b);
}

TEST_F(NatTest, DistinctFlowsGetDistinctPorts) {
  auto p1 = MakeUdpContext(5000, 80, Direction::kTx);
  auto p2 = MakeUdpContext(5001, 80, Direction::kTx);
  nat_.Process(p1->packet, p1->ctx);
  nat_.Process(p2->packet, p2->ctx);
  EXPECT_EQ(nat_.active_mappings(), 2u);
  const auto a = net::ParseFrame(p1->packet.bytes())->udp->src_port;
  const auto b = net::ParseFrame(p2->packet.bytes())->udp->src_port;
  EXPECT_NE(a, b);
}

TEST_F(NatTest, OutsidePrefixUntouched) {
  // Source 172.16.x is outside 10/8.
  net::FrameEndpoints ep{net::MacAddress::ForHost(1),
                         net::MacAddress::ForHost(2),
                         Ipv4Address::FromOctets(172, 16, 0, 1),
                         test::kRemoteIp};
  auto frame = net::BuildUdpFrame(ep, 1111, 80, std::vector<uint8_t>(4, 0));
  net::Packet packet(frame);
  auto parsed = *net::ParseFrame(packet.bytes());
  overlay::PacketContext ctx;
  ctx.frame = packet.bytes();
  ctx.parsed = &parsed;
  ctx.direction = Direction::kTx;
  nat_.Process(packet, ctx);
  EXPECT_EQ(nat_.tx_translated(), 0u);
  EXPECT_EQ(net::ParseFrame(packet.bytes())->udp->src_port, 1111);
}

TEST_F(NatTest, SramExhaustionDropsNewFlows) {
  nic::SramAllocator tiny(2 * kNatEntryBytes);
  NatEngine nat(&tiny, Ipv4Address::FromOctets(10, 0, 0, 0), 8,
                Ipv4Address::FromOctets(203, 0, 113, 7));
  for (uint16_t i = 0; i < 2; ++i) {
    auto p = MakeUdpContext(6000 + i, 80, Direction::kTx);
    EXPECT_EQ(nat.Process(p->packet, p->ctx).verdict, nic::Verdict::kAccept);
  }
  auto p3 = MakeUdpContext(6002, 80, Direction::kTx);
  EXPECT_EQ(nat.Process(p3->packet, p3->ctx).verdict, nic::Verdict::kDrop);
  EXPECT_EQ(nat.exhausted_drops(), 1u);
}

TEST_F(NatTest, NonIpPassesThrough) {
  auto arp_frame = net::BuildArpRequest(net::MacAddress::ForHost(1),
                                        test::kLocalIp, test::kRemoteIp);
  net::Packet packet(arp_frame);
  auto parsed = *net::ParseFrame(packet.bytes());
  overlay::PacketContext ctx;
  ctx.frame = packet.bytes();
  ctx.parsed = &parsed;
  ctx.direction = Direction::kTx;
  EXPECT_EQ(nat_.Process(packet, ctx).verdict, nic::Verdict::kAccept);
  EXPECT_EQ(nat_.tx_translated(), 0u);
}

// --- Conntrack ---

class ConntrackTest : public ::testing::Test {
 protected:
  ConntrackTest() : sram_(1 * kMiB), ct_(&sram_, /*idle_timeout=*/kSecond) {}
  nic::SramAllocator sram_;
  Conntrack ct_;
};

TEST_F(ConntrackTest, TcpHandshakeReachesEstablished) {
  auto syn = MakeTcpContext(1000, 80, TcpFlags::kSyn, Direction::kTx);
  syn->packet.meta().nic_arrival = 10;
  ct_.Process(syn->packet, syn->ctx);
  const auto* e = ct_.Lookup(*syn->parsed.flow());
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->state, ConnState::kSynSent);

  // SYN-ACK from responder (reverse direction tuple).
  auto synack = MakeTcpContext(80, 1000, TcpFlags::kSyn | TcpFlags::kAck,
                               Direction::kRx);
  synack->packet.meta().nic_arrival = 20;
  ct_.Process(synack->packet, synack->ctx);
  EXPECT_EQ(e->state, ConnState::kEstablished);
  EXPECT_EQ(ct_.size(), 1u);  // one tracked connection, both directions
  EXPECT_EQ(e->packets, 2u);
}

TEST_F(ConntrackTest, FinSequenceCloses) {
  auto syn = MakeTcpContext(1000, 80, TcpFlags::kSyn, Direction::kTx);
  ct_.Process(syn->packet, syn->ctx);
  auto synack = MakeTcpContext(80, 1000, TcpFlags::kSyn | TcpFlags::kAck,
                               Direction::kRx);
  ct_.Process(synack->packet, synack->ctx);
  auto fin1 = MakeTcpContext(1000, 80, TcpFlags::kFin | TcpFlags::kAck,
                             Direction::kTx);
  ct_.Process(fin1->packet, fin1->ctx);
  const auto* e = ct_.Lookup(*syn->parsed.flow());
  EXPECT_EQ(e->state, ConnState::kFinWait);
  auto fin2 = MakeTcpContext(80, 1000, TcpFlags::kFin | TcpFlags::kAck,
                             Direction::kRx);
  ct_.Process(fin2->packet, fin2->ctx);
  EXPECT_EQ(e->state, ConnState::kClosed);
}

TEST_F(ConntrackTest, RstClosesImmediately) {
  auto syn = MakeTcpContext(1000, 80, TcpFlags::kSyn, Direction::kTx);
  ct_.Process(syn->packet, syn->ctx);
  auto rst = MakeTcpContext(1000, 80, TcpFlags::kRst, Direction::kTx);
  ct_.Process(rst->packet, rst->ctx);
  EXPECT_EQ(ct_.Lookup(*syn->parsed.flow())->state, ConnState::kClosed);
}

TEST_F(ConntrackTest, UdpEstablishesOnReply) {
  auto req = MakeUdpContext(1000, 53, Direction::kTx);
  ct_.Process(req->packet, req->ctx);
  EXPECT_EQ(ct_.Lookup(*req->parsed.flow())->state, ConnState::kNew);
  auto resp = MakeUdpContext(53, 1000, Direction::kRx);
  ct_.Process(resp->packet, resp->ctx);
  EXPECT_EQ(ct_.Lookup(*req->parsed.flow())->state, ConnState::kEstablished);
}

TEST_F(ConntrackTest, SweepRemovesClosedAndIdle) {
  auto rst = MakeTcpContext(1, 2, TcpFlags::kRst, Direction::kTx);
  rst->packet.meta().nic_arrival = 0;
  ct_.Process(rst->packet, rst->ctx);
  auto live = MakeUdpContext(3, 4, Direction::kTx);
  live->packet.meta().nic_arrival = 100;
  ct_.Process(live->packet, live->ctx);
  EXPECT_EQ(ct_.size(), 2u);
  EXPECT_EQ(ct_.Sweep(200), 1u);  // closed TCP entry goes
  EXPECT_EQ(ct_.size(), 1u);
  EXPECT_EQ(ct_.Sweep(100 + 2 * kSecond), 1u);  // idle UDP expires
  EXPECT_EQ(ct_.size(), 0u);
  EXPECT_EQ(sram_.UsedBy("conntrack"), 0u);
}

TEST_F(ConntrackTest, SramExhaustionCountsUntracked) {
  nic::SramAllocator tiny(kConntrackEntryBytes);
  Conntrack ct(&tiny);
  auto a = MakeUdpContext(1, 2, Direction::kTx);
  auto b = MakeUdpContext(3, 4, Direction::kTx);
  ct.Process(a->packet, a->ctx);
  ct.Process(b->packet, b->ctx);
  EXPECT_EQ(ct.size(), 1u);
  EXPECT_EQ(ct.untracked(), 1u);
}

// --- ArpService ---

class ArpTest : public ::testing::Test {
 protected:
  ArpTest()
      : arp_(&sim_, test::kLocalIp, net::MacAddress::ForHost(1)) {
    arp_.SetReplyInjector(
        [this](net::PacketPtr p) { injected_.push_back(std::move(p)); });
  }

  std::unique_ptr<test::ContextBundle> ArpContext(
      std::vector<uint8_t> frame, net::Direction dir,
      ConnMetadata owner = {}) {
    auto b = std::make_unique<test::ContextBundle>();
    b->frame = std::move(frame);
    b->packet = net::Packet(b->frame);
    b->parsed = *net::ParseFrame(b->packet.bytes());
    b->ctx.frame = b->packet.bytes();
    b->ctx.parsed = &b->parsed;
    b->ctx.conn = owner;
    b->ctx.direction = dir;
    b->packet.meta().direction = dir;
    return b;
  }

  sim::Simulator sim_;
  ArpService arp_;
  std::vector<net::PacketPtr> injected_;
};

TEST_F(ArpTest, AnswersRequestsForLocalIp) {
  auto req = ArpContext(
      net::BuildArpRequest(net::MacAddress::ForHost(9),
                           Ipv4Address::FromOctets(10, 0, 0, 9),
                           test::kLocalIp),
      Direction::kRx);
  const auto result = arp_.Process(req->packet, req->ctx);
  EXPECT_EQ(result.verdict, nic::Verdict::kDrop);  // consumed by the NIC
  ASSERT_EQ(injected_.size(), 1u);
  auto reply = net::ParseFrame(injected_[0]->bytes());
  ASSERT_TRUE(reply && reply->is_arp());
  EXPECT_EQ(reply->arp->op, net::ArpOp::kReply);
  EXPECT_EQ(reply->arp->sender_ip, test::kLocalIp);
  EXPECT_EQ(reply->arp->sender_mac, net::MacAddress::ForHost(1));
  EXPECT_EQ(reply->eth.dst, net::MacAddress::ForHost(9));
  EXPECT_EQ(arp_.replies_generated(), 1u);
}

TEST_F(ArpTest, IgnoresRequestsForOtherIps) {
  auto req = ArpContext(
      net::BuildArpRequest(net::MacAddress::ForHost(9),
                           Ipv4Address::FromOctets(10, 0, 0, 9),
                           Ipv4Address::FromOctets(10, 0, 0, 77)),
      Direction::kRx);
  EXPECT_EQ(arp_.Process(req->packet, req->ctx).verdict,
            nic::Verdict::kAccept);
  EXPECT_TRUE(injected_.empty());
  // But the sender was still learned.
  EXPECT_TRUE(arp_.cache().contains(
      Ipv4Address::FromOctets(10, 0, 0, 9).addr));
}

TEST_F(ArpTest, AdditionalLocalAddressesAnswered) {
  const auto vip = Ipv4Address::FromOctets(10, 0, 0, 200);
  arp_.AddLocalAddress(vip);
  auto req = ArpContext(
      net::BuildArpRequest(net::MacAddress::ForHost(9),
                           Ipv4Address::FromOctets(10, 0, 0, 9), vip),
      Direction::kRx);
  arp_.Process(req->packet, req->ctx);
  EXPECT_EQ(arp_.replies_generated(), 1u);
}

TEST_F(ArpTest, TxObservationRecordsOwner) {
  // The buggy-app forensic record: app-originated ARP tagged with its pid.
  auto req = ArpContext(
      net::BuildArpRequest(net::MacAddress::ForHost(66),
                           Ipv4Address::FromOctets(10, 0, 0, 66),
                           test::kRemoteIp),
      Direction::kTx, ConnMetadata{5, 1002, 4321, 2, 9});
  EXPECT_EQ(arp_.Process(req->packet, req->ctx).verdict,
            nic::Verdict::kAccept);
  ASSERT_EQ(arp_.tx_observations().size(), 1u);
  const auto& obs = arp_.tx_observations()[0];
  EXPECT_EQ(obs.owner.owner_pid, 4321u);
  EXPECT_EQ(obs.owner.owner_uid, 1002u);
  EXPECT_EQ(obs.claimed_sender_ip, Ipv4Address::FromOctets(10, 0, 0, 66));
  EXPECT_TRUE(obs.is_request);
}

TEST_F(ArpTest, NonArpIgnored) {
  auto udp = MakeUdpContext(1, 2, Direction::kRx);
  EXPECT_EQ(arp_.Process(udp->packet, udp->ctx).verdict,
            nic::Verdict::kAccept);
  EXPECT_TRUE(arp_.cache().empty());
  EXPECT_TRUE(arp_.tx_observations().empty());
}

TEST_F(ArpTest, CacheUpdatesOnNewerObservation) {
  auto r1 = ArpContext(
      net::BuildArpRequest(net::MacAddress::ForHost(9),
                           Ipv4Address::FromOctets(10, 0, 0, 9),
                           Ipv4Address::FromOctets(10, 0, 0, 99)),
      Direction::kRx);
  arp_.Process(r1->packet, r1->ctx);
  auto r2 = ArpContext(
      net::BuildArpRequest(net::MacAddress::ForHost(10),
                           Ipv4Address::FromOctets(10, 0, 0, 9),  // same IP
                           Ipv4Address::FromOctets(10, 0, 0, 99)),
      Direction::kRx);
  arp_.Process(r2->packet, r2->ctx);
  const auto& entry =
      arp_.cache().at(Ipv4Address::FromOctets(10, 0, 0, 9).addr);
  EXPECT_EQ(entry.mac, net::MacAddress::ForHost(10));
}

}  // namespace
}  // namespace norman::dataplane
