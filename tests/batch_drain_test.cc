// Batched drains must be invisible to accounting and delivery semantics.
//
// Three layers of the batching refactor get their equivalence pinned here:
//  * drop accounting — RecordDrop bypasses the burst accumulators by design,
//    so the owner-annotated ledger must be *exactly* equal (not statistically
//    close) between per-event and batched dispatch;
//  * the kernel's bulk notification drain (NotificationQueue::PollN) — FIFO
//    order, lossy-overflow semantics, and interrupt re-arm unchanged;
//  * the socket bulk receive lane (Socket::RecvFrames) — same frames, same
//    order, same stats as draining one RecvFrame at a time.
#include <gtest/gtest.h>

#include <array>
#include <span>
#include <vector>

#include "src/common/drop_reason.h"
#include "src/nic/notification.h"
#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

constexpr auto kPeerIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);

// ---- Drop-ledger exactness under batching ---------------------------------

struct DropSnapshot {
  std::vector<nic::NicStats::DropRecord> ledger;
  uint64_t total = 0;
  uint64_t tx_seen = 0;
  uint64_t rx_seen = 0;
};

// A world built to drop from several reasons at once: a TX filter deny,
// unmatched RX traffic, and normal accepted traffic interleaved — all under
// the given event dispatch batch size.
DropSnapshot RunDroppyWorld(uint32_t dispatch_batch) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  bed.sim().set_dispatch_batch(dispatch_batch);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  EXPECT_TRUE(tools::IptablesAppend(&k, kernel::kRootUid,
                                    "-A OUTPUT -p udp --dport 9 -j DROP")
                  .ok());

  auto good = Socket::Connect(&k, pid, kPeerIp, 6000, {});
  auto bad = Socket::Connect(&k, pid, kPeerIp, 9, {});
  EXPECT_TRUE(good.ok());
  EXPECT_TRUE(bad.ok());
  const std::vector<uint8_t> payload(96, 0x5a);
  // Burst several sends back-to-back before running so the NIC's TX fetch
  // loop actually processes multi-packet bursts (the case under test).
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(good->Send(payload).ok());
      EXPECT_TRUE(bad->Send(payload).ok());
    }
    bed.sim().Run();
  }
  // Unmatched RX frames (no registered connection → host slow path, some
  // dropped as unparseable).
  Nanos t = bed.sim().Now();
  for (int i = 0; i < 5; ++i) {
    bed.InjectUdpFromPeer(1234, 4321, 64, t += kMicrosecond);
  }
  bed.InjectFromNetwork(net::MakePacket(std::vector<uint8_t>(6, 0xee)),
                        t += kMicrosecond);
  bed.sim().Run();

  DropSnapshot snap;
  const auto& s = bed.nic().stats();
  snap.ledger = s.DropLedger();
  snap.total = s.total_drops();
  snap.tx_seen = s.tx_seen();
  snap.rx_seen = s.rx_seen();
  return snap;
}

// Satellite fix check: per-burst accumulation covers *volume* counters only;
// RecordDrop writes the reason counters and the owner ledger immediately, so
// drop totals are exact — never sampled, never burst-granular — and the
// ledger rows match row-for-row between batch-off and batch-on dispatch.
TEST(BatchDrainTest, DropLedgerExactlyEqualBatchOnVsOff) {
  const DropSnapshot off = RunDroppyWorld(/*dispatch_batch=*/1);
  const DropSnapshot on = RunDroppyWorld(/*dispatch_batch=*/64);

  EXPECT_GT(off.total, 0u) << "scenario stopped generating drops";
  EXPECT_EQ(off.total, on.total);
  EXPECT_EQ(off.tx_seen, on.tx_seen);
  EXPECT_EQ(off.rx_seen, on.rx_seen);
  ASSERT_EQ(off.ledger.size(), on.ledger.size());
  for (size_t i = 0; i < off.ledger.size(); ++i) {
    EXPECT_EQ(off.ledger[i].direction, on.ledger[i].direction) << "row " << i;
    EXPECT_EQ(off.ledger[i].reason, on.ledger[i].reason) << "row " << i;
    EXPECT_EQ(off.ledger[i].owner_pid, on.ledger[i].owner_pid) << "row " << i;
    EXPECT_EQ(off.ledger[i].count, on.ledger[i].count) << "row " << i;
  }
  // And the ledger still accounts for every drop exactly once.
  uint64_t sum = 0;
  for (const auto& rec : on.ledger) {
    EXPECT_NE(rec.reason, DropReason::kNone);
    sum += rec.count;
  }
  EXPECT_EQ(sum, on.total);
}

// ---- Bulk notification drain ----------------------------------------------

TEST(BatchDrainTest, NotificationPollNPreservesFifoAndShortCount) {
  nic::NotificationQueue q(8);
  for (uint32_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.Post({nic::NotificationKind::kRxData,
                        static_cast<net::ConnectionId>(i + 1),
                        static_cast<Nanos>(i * 10)}));
  }
  std::array<nic::Notification, 3> burst;
  EXPECT_EQ(q.PollN(std::span<nic::Notification>(burst)), 3u);
  EXPECT_EQ(burst[0].conn_id, 1u);
  EXPECT_EQ(burst[2].conn_id, 3u);
  EXPECT_EQ(q.size(), 2u);
  // Short count == queue drained; a follow-up PollN sees nothing.
  EXPECT_EQ(q.PollN(std::span<nic::Notification>(burst)), 2u);
  EXPECT_EQ(burst[0].conn_id, 4u);
  EXPECT_EQ(burst[1].conn_id, 5u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.PollN(std::span<nic::Notification>(burst)), 0u);
}

TEST(BatchDrainTest, NotificationPollNInteroperatesWithScalarPoll) {
  nic::NotificationQueue q(8);
  for (uint32_t i = 0; i < 4; ++i) {
    q.Post({nic::NotificationKind::kTxDrained,
            static_cast<net::ConnectionId>(i + 10), 0});
  }
  EXPECT_EQ(q.Poll()->conn_id, 10u);
  std::array<nic::Notification, 8> burst;
  EXPECT_EQ(q.PollN(std::span<nic::Notification>(burst)), 3u);
  EXPECT_EQ(burst[0].conn_id, 11u);
  EXPECT_EQ(burst[2].conn_id, 13u);
}

// Blocking receives ride the notification queue; under batched dispatch the
// kernel drains it in PollN bursts. End-to-end: every blocked reader wakes.
TEST(BatchDrainTest, BlockingRecvWakesUnderBatchedNotifyDrain) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  bed.sim().set_dispatch_batch(64);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  kernel::ConnectOptions copts;
  copts.notify_rx = true;
  auto sock = Socket::Connect(&k, pid, kPeerIp, 7000, copts);
  ASSERT_TRUE(sock.ok());

  int delivered = 0;
  ASSERT_TRUE(sock->RecvBlocking([&](std::vector<uint8_t> data) {
                  ++delivered;
                  EXPECT_EQ(data.size(), 48u);
                }).ok());
  ASSERT_TRUE(sock->Send(std::vector<uint8_t>(48, 0xaa)).ok());
  bed.sim().Run();
  EXPECT_EQ(delivered, 1);
}

// ---- Socket bulk receive ---------------------------------------------------

TEST(BatchDrainTest, RecvFramesMatchesScalarRecvFrame) {
  // Two identical worlds, same traffic; one drains with RecvFrame, the
  // other with one RecvFrames burst. Same frames, same order, same stats.
  auto run = [](bool bulk) {
    workload::TestBedOptions opts;
    opts.echo = true;
    workload::TestBed bed(opts);
    auto& k = bed.kernel();
    k.processes().AddUser(1, "u");
    const auto pid = *k.processes().Spawn(1, "app");
    auto sock = Socket::Connect(&k, pid, kPeerIp, 7000, {});
    EXPECT_TRUE(sock.ok());
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(sock->Send(std::vector<uint8_t>(32 + i, 0xbb)).ok());
    }
    bed.sim().Run();

    std::vector<size_t> sizes;
    if (bulk) {
      std::array<net::PacketPtr, 16> burst;
      const size_t n = sock->RecvFrames(std::span<net::PacketPtr>(burst));
      for (size_t i = 0; i < n; ++i) {
        sizes.push_back(burst[i]->size());
      }
      // Short count means empty: nothing more to receive.
      EXPECT_LT(n, burst.size());
      EXPECT_EQ(sock->RecvFrames(std::span<net::PacketPtr>(burst)), 0u);
    } else {
      while (net::PacketPtr p = sock->RecvFrame()) {
        sizes.push_back(p->size());
      }
    }
    return std::make_tuple(sizes, sock->stats().rx_packets,
                           sock->stats().rx_bytes);
  };
  const auto scalar = run(false);
  const auto bulk = run(true);
  EXPECT_EQ(std::get<0>(scalar).size(), 6u);
  EXPECT_EQ(bulk, scalar);
}

TEST(BatchDrainTest, RecvFramesRespectsSpanCapacity) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  auto sock = Socket::Connect(&k, pid, kPeerIp, 7000, {});
  ASSERT_TRUE(sock.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(sock->Send(std::vector<uint8_t>(64, 0xcc)).ok());
  }
  bed.sim().Run();

  std::array<net::PacketPtr, 2> burst;
  EXPECT_EQ(sock->RecvFrames(std::span<net::PacketPtr>(burst)), 2u);
  EXPECT_EQ(sock->RecvFrames(std::span<net::PacketPtr>(burst)), 2u);
  EXPECT_EQ(sock->RecvFrames(std::span<net::PacketPtr>(burst)), 1u);
  EXPECT_EQ(sock->RecvFrames(std::span<net::PacketPtr>(burst)), 0u);
  EXPECT_EQ(sock->stats().rx_packets, 5u);
}

}  // namespace
}  // namespace norman
