// Tests for the administrative tools: iptables/tc spec parsing, tcpdump
// rendering with process annotations, netstat, arp.
#include "src/tools/tools.h"

#include <gtest/gtest.h>

#include "src/norman/socket.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace norman::tools {
namespace {

using kernel::Chain;
using kernel::kRootUid;

class ToolsTest : public ::testing::Test {
 protected:
  ToolsTest() {
    bed_.kernel().processes().AddUser(1001, "bob");
    bed_.kernel().processes().AddUser(1002, "charlie");
    bob_pg_ = *bed_.kernel().processes().Spawn(1001, "postgres");
    charlie_my_ = *bed_.kernel().processes().Spawn(1002, "mysql");
  }

  workload::TestBed bed_;
  kernel::Pid bob_pg_ = 0;
  kernel::Pid charlie_my_ = 0;
};

TEST_F(ToolsTest, IptablesAppendParsesOwnerRules) {
  auto idx = IptablesAppend(
      &bed_.kernel(), kRootUid,
      "-A OUTPUT -p tcp --dport 5432 -m owner --uid-owner 1001 "
      "--cmd-owner postgres -j ACCEPT");
  ASSERT_TRUE(idx.ok()) << idx.status();
  auto idx2 = IptablesAppend(&bed_.kernel(), kRootUid,
                             "-A OUTPUT -p tcp --dport 5432 -j DROP");
  ASSERT_TRUE(idx2.ok());

  const auto& rules = bed_.kernel().filter(Chain::kOutput).rules();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].proto, net::IpProto::kTcp);
  EXPECT_EQ(rules[0].dst_port->lo, 5432);
  EXPECT_EQ(rules[0].owner_uid, 1001u);
  EXPECT_TRUE(rules[0].owner_comm.has_value());
  EXPECT_EQ(rules[1].action, dataplane::FilterAction::kDrop);
}

TEST_F(ToolsTest, IptablesRejectsGarbage) {
  EXPECT_FALSE(IptablesAppend(&bed_.kernel(), kRootUid, "frobnicate").ok());
  EXPECT_FALSE(IptablesAppend(&bed_.kernel(), kRootUid, "-A SIDEWAYS -j DROP").ok());
  EXPECT_FALSE(IptablesAppend(&bed_.kernel(), kRootUid, "-A OUTPUT").ok());
  EXPECT_FALSE(
      IptablesAppend(&bed_.kernel(), kRootUid, "-A OUTPUT -j EXPLODE").ok());
  EXPECT_FALSE(IptablesAppend(&bed_.kernel(), kRootUid,
                              "-A OUTPUT -s 999.1.2.3 -j DROP")
                   .ok());
  EXPECT_FALSE(IptablesAppend(&bed_.kernel(), kRootUid,
                              "-A OUTPUT --dport 70000 -j DROP")
                   .ok());
}

TEST_F(ToolsTest, IptablesRequiresRoot) {
  EXPECT_EQ(IptablesAppend(&bed_.kernel(), 1001, "-A OUTPUT -j DROP")
                .status()
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ToolsTest, IptablesListShowsRulesAndCounters) {
  ASSERT_TRUE(IptablesAppend(&bed_.kernel(), kRootUid,
                             "-A OUTPUT -p udp --dport 53 -j DROP")
                  .ok());
  auto sock = Socket::Connect(&bed_.kernel(), bob_pg_,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2), 53,
                              {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("blocked dns").ok());
  bed_.sim().Run();

  const std::string listing = IptablesList(bed_.kernel());
  EXPECT_NE(listing.find("Chain OUTPUT"), std::string::npos);
  EXPECT_NE(listing.find("DROP -p udp --dport 53:53"), std::string::npos);
  EXPECT_NE(listing.find("[1 hits]"), std::string::npos);
}

TEST_F(ToolsTest, IptablesDeleteAndFlush) {
  ASSERT_TRUE(
      IptablesAppend(&bed_.kernel(), kRootUid, "-A INPUT -j DROP").ok());
  ASSERT_TRUE(IptablesDelete(&bed_.kernel(), kRootUid, Chain::kInput, 0).ok());
  EXPECT_TRUE(bed_.kernel().filter(Chain::kInput).rules().empty());
  ASSERT_TRUE(
      IptablesAppend(&bed_.kernel(), kRootUid, "-A INPUT -j DROP").ok());
  ASSERT_TRUE(IptablesFlush(&bed_.kernel(), kRootUid, Chain::kInput).ok());
  EXPECT_TRUE(bed_.kernel().filter(Chain::kInput).rules().empty());
}

TEST_F(ToolsTest, TcInstallsEachQdiscKind) {
  EXPECT_TRUE(TcReplace(&bed_.kernel(), kRootUid,
                        "qdisc replace dev nic0 root fifo")
                  .ok());
  EXPECT_TRUE(TcReplace(&bed_.kernel(), kRootUid,
                        "qdisc replace dev nic0 root prio bands 3")
                  .ok());
  EXPECT_TRUE(TcReplace(&bed_.kernel(), kRootUid,
                        "qdisc replace dev nic0 root tbf rate 100mbit "
                        "burst 32kb")
                  .ok());
  EXPECT_TRUE(TcReplace(&bed_.kernel(), kRootUid,
                        "qdisc replace dev nic0 root drr quantum 1514")
                  .ok());
  EXPECT_TRUE(TcReplace(&bed_.kernel(), kRootUid,
                        "qdisc replace dev nic0 root wfq uid 1001:8 "
                        "uid 1002:1")
                  .ok());
  const std::string shown = TcShow(bed_.kernel());
  EXPECT_NE(shown.find("qdisc wfq"), std::string::npos);
}

TEST_F(ToolsTest, TcRejectsBadSpecs) {
  EXPECT_FALSE(TcReplace(&bed_.kernel(), kRootUid, "qdisc add root fifo").ok());
  EXPECT_FALSE(TcReplace(&bed_.kernel(), kRootUid,
                         "qdisc replace dev nic0 root htb")
                   .ok());
  EXPECT_FALSE(TcReplace(&bed_.kernel(), kRootUid,
                         "qdisc replace dev nic0 root tbf burst 32kb")
                   .ok());  // no rate
  EXPECT_FALSE(TcReplace(&bed_.kernel(), kRootUid,
                         "qdisc replace dev nic0 root wfq uid bogus")
                   .ok());
  EXPECT_EQ(TcReplace(&bed_.kernel(), 1002,
                      "qdisc replace dev nic0 root fifo")
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ToolsTest, TbfShapesTraffic) {
  // 80 Mbit/s shaping on a 100G link: egress should take ~bytes*8/80M.
  ASSERT_TRUE(TcReplace(&bed_.kernel(), kRootUid,
                        "qdisc replace dev nic0 root tbf rate 80mbit "
                        "burst 2kb")
                  .ok());
  auto sock = Socket::Connect(&bed_.kernel(), bob_pg_,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              7000, {});
  ASSERT_TRUE(sock.ok());
  workload::BulkSender sender(&bed_.sim(), &*sock, 1000, 10 * kMicrosecond);
  sender.Start(0, 5 * kMillisecond);
  bed_.sim().Run();
  ASSERT_GT(bed_.egress_frames(), 10u);
  const Nanos span = bed_.egress().back()->meta().completed_at;
  const double achieved = AchievedBps(bed_.egress_bytes(), span);
  EXPECT_LT(achieved, 95e6);   // shaped under the 80mbit rate (+burst slack)
  EXPECT_GT(achieved, 40e6);   // but not starved
}

TEST_F(ToolsTest, TcpdumpRendersProcessAnnotations) {
  ASSERT_TRUE(TcpdumpStart(&bed_.kernel(), kRootUid).ok());
  auto sock = Socket::Connect(&bed_.kernel(), bob_pg_,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              5432, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("select 1").ok());
  bed_.sim().Run();
  ASSERT_TRUE(TcpdumpStop(&bed_.kernel(), kRootUid).ok());

  const std::string dump = TcpdumpRender(bed_.kernel());
  EXPECT_NE(dump.find("postgres/bob"), std::string::npos);
  EXPECT_NE(dump.find(":5432"), std::string::npos);
  EXPECT_NE(dump.find("udp"), std::string::npos);
}

TEST_F(ToolsTest, TcpdumpOverlayFilterExpression) {
  // Capture only ARP, expressed as overlay assembly.
  ASSERT_TRUE(TcpdumpStart(&bed_.kernel(), kRootUid,
                           "ldf r1, is_arp\nret r1")
                  .ok());
  auto sock = Socket::Connect(&bed_.kernel(), bob_pg_,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              5432, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("not arp").ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.kernel().sniffer().captured(), 0u);

  EXPECT_FALSE(TcpdumpStart(&bed_.kernel(), kRootUid, "bogus asm").ok());
}

TEST_F(ToolsTest, TcpdumpWritesPcapFile) {
  ASSERT_TRUE(TcpdumpStart(&bed_.kernel(), kRootUid).ok());
  auto sock = Socket::Connect(&bed_.kernel(), bob_pg_,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              5432, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("captured").ok());
  bed_.sim().Run();
  const std::string path = ::testing::TempDir() + "/tools_test.pcap";
  ASSERT_TRUE(TcpdumpWritePcap(bed_.kernel(), path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
}

TEST_F(ToolsTest, NetstatShowsOwners) {
  auto s1 = Socket::Connect(&bed_.kernel(), bob_pg_,
                            net::Ipv4Address::FromOctets(10, 0, 0, 2), 5432,
                            {});
  auto s2 = Socket::Connect(&bed_.kernel(), charlie_my_,
                            net::Ipv4Address::FromOctets(10, 0, 0, 2), 3306,
                            {});
  ASSERT_TRUE(s1.ok() && s2.ok());
  ASSERT_TRUE(s1->Send("a").ok());
  bed_.sim().Run();

  const std::string out = Netstat(bed_.kernel());
  EXPECT_NE(out.find("postgres (bob)"), std::string::npos);
  EXPECT_NE(out.find("mysql (charlie)"), std::string::npos);
  EXPECT_NE(out.find(":5432"), std::string::npos);
  EXPECT_NE(out.find(":3306"), std::string::npos);
}

TEST_F(ToolsTest, ArpShowAggregatesTxObservationsByPid) {
  // The buggy app floods ARP through its bypass connection.
  auto sock = Socket::Connect(&bed_.kernel(), charlie_my_,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              9999, {});
  ASSERT_TRUE(sock.ok());
  workload::ArpFlooder flooder(&bed_.sim(), &*sock,
                               net::MacAddress::ForHost(0xbad),
                               net::Ipv4Address::FromOctets(10, 0, 0, 66),
                               50 * kMicrosecond);
  flooder.Start(0, 2 * kMillisecond);
  bed_.sim().Run();
  ASSERT_GT(flooder.sent(), 10u);

  const std::string out = ArpShow(bed_.kernel());
  EXPECT_NE(out.find("pid " + std::to_string(charlie_my_)), std::string::npos);
  EXPECT_NE(out.find("mysql/charlie"), std::string::npos);
}

TEST_F(ToolsTest, TcRateLimitSpecParses) {
  auto sock = Socket::Connect(&bed_.kernel(), bob_pg_,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              7100, {});
  ASSERT_TRUE(sock.ok());
  const std::string spec = "conn " + std::to_string(sock->conn_id()) +
                           " rate 100mbit burst 16kb";
  EXPECT_TRUE(TcRateLimit(&bed_.kernel(), kRootUid, spec).ok());
  // Clear.
  EXPECT_TRUE(TcRateLimit(&bed_.kernel(), kRootUid,
                          "conn " + std::to_string(sock->conn_id()) +
                              " rate 0")
                  .ok());
  // Errors.
  EXPECT_FALSE(TcRateLimit(&bed_.kernel(), kRootUid, "bogus").ok());
  EXPECT_FALSE(
      TcRateLimit(&bed_.kernel(), kRootUid, "conn 9999 rate 1mbit").ok());
  EXPECT_EQ(TcRateLimit(&bed_.kernel(), 1001,
                        "conn " + std::to_string(sock->conn_id()) +
                            " rate 1mbit")
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ToolsTest, TcRateLimitActuallyShapes) {
  auto sock = Socket::Connect(&bed_.kernel(), bob_pg_,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              7200, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(TcRateLimit(&bed_.kernel(), kRootUid,
                          "conn " + std::to_string(sock->conn_id()) +
                              " rate 40mbit burst 2kb")
                  .ok());
  constexpr Nanos kRunFor = 10 * kMillisecond;
  workload::BulkSender sender(&bed_.sim(), &*sock, 1200, 10 * kMicrosecond);
  sender.Start(0, kRunFor);
  bed_.sim().RunUntil(kRunFor);
  const double bps = AchievedBps(bed_.egress_bytes(), kRunFor);
  EXPECT_LT(bps, 55e6);
  EXPECT_GT(bps, 20e6);
}

TEST_F(ToolsTest, NicStatRendersCountersAndUtilization) {
  auto sock = Socket::Connect(&bed_.kernel(), bob_pg_,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              7300, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("counted").ok());
  bed_.sim().Run();
  const std::string out = NicStat(bed_.kernel(), bed_.nic());
  // The tx volume counter is hot-tier: it reads 0 when compiled out.
  EXPECT_NE(out.find(telemetry::kHotStatsEnabled ? "tx: seen 1"
                                                 : "tx: seen 0"),
            std::string::npos);
  EXPECT_NE(out.find("ddio:"), std::string::npos);
  EXPECT_NE(out.find("sram:"), std::string::npos);
  EXPECT_NE(out.find("flow_table"), std::string::npos);
  EXPECT_NE(out.find("utilization:"), std::string::npos);
}

}  // namespace
}  // namespace norman::tools
