// Kernel tracepoints: probe naming, arm/disarm gating, predicate parsing
// and emit-time filtering, per-core ring retention with oldest-first
// overwrite, the freeze latch, and the byte-stable inspection exports.
#include <gtest/gtest.h>

#include <string>

#include "src/common/metrics.h"
#include "src/common/tracepoint.h"

namespace norman {
namespace {

using telemetry::kDirRx;
using telemetry::kDirTx;
using telemetry::Probe;
using telemetry::ProbePredicate;
using telemetry::TraceFlow;
using telemetry::Tracepoints;

TEST(TracepointTest, ProbeNamesRoundTrip) {
  for (size_t i = 0; i < telemetry::kNumProbes; ++i) {
    const auto probe = static_cast<Probe>(i);
    const std::string_view name = telemetry::ProbeName(probe);
    EXPECT_FALSE(name.empty());
    Probe back;
    ASSERT_TRUE(telemetry::ProbeFromName(name, &back)) << name;
    EXPECT_EQ(back, probe);
  }
  Probe out;
  EXPECT_FALSE(telemetry::ProbeFromName("no.such.probe", &out));
}

TEST(TracepointTest, RegistersCountersEagerly) {
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  // Every probe counter plus the overwrite counter exists before any arm,
  // so the metric manifest does not depend on what a run chose to watch.
  EXPECT_EQ(reg.GetCounter("probe.filter.verdict")->value(), 0u);
  EXPECT_EQ(reg.GetCounter("probe.watchdog.transition")->value(), 0u);
  EXPECT_EQ(reg.GetCounter("probe.records.dropped")->value(), 0u);
}

TEST(TracepointTest, DisarmedEmitRecordsNothing) {
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  tp.Emit(Probe::kNicDrop, Tracepoints::kCoreNic, 7, 1, 2, 3);
  EXPECT_EQ(tp.hits(Probe::kNicDrop), 0u);
  EXPECT_EQ(tp.emitted_total(), 0u);
  EXPECT_TRUE(tp.Journal().empty());
  EXPECT_EQ(reg.GetCounter("probe.nic.drop")->value(), 0u);
}

TEST(TracepointTest, ArmedEmitStampsRecordAndCounts) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  Nanos now = 0;
  tp.SetClock(&now);
  tp.Arm(Probe::kSramAlloc);
  now = 123;
  const TraceFlow flow{0x0a000001, 0x0a000002, 1111, 2222, 17, kDirTx};
  tp.Emit(Probe::kSramAlloc, Tracepoints::kCoreNic, 42, 64, 128, 0, &flow);
  ASSERT_EQ(tp.Journal().size(), 1u);
  const telemetry::TraceRecord rec = tp.Journal()[0];
  EXPECT_EQ(rec.t, 123);
  EXPECT_EQ(rec.seq, 0u);
  EXPECT_EQ(rec.a0, 64u);
  EXPECT_EQ(rec.a1, 128u);
  EXPECT_EQ(rec.pid, 42u);
  EXPECT_EQ(rec.probe, static_cast<uint16_t>(Probe::kSramAlloc));
  EXPECT_EQ(rec.core, Tracepoints::kCoreNic);
  EXPECT_EQ(rec.dir, kDirTx);
  EXPECT_EQ(tp.hits(Probe::kSramAlloc), 1u);
  EXPECT_EQ(reg.GetCounter("probe.sram.alloc")->value(), 1u);
  // Other probes stay disarmed.
  tp.Emit(Probe::kNicDrop, Tracepoints::kCoreNic, 42);
  EXPECT_EQ(tp.Journal().size(), 1u);
}

TEST(TracepointTest, PredicateFiltersAtEmit) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  ProbePredicate pred;
  pred.pid = 5;
  pred.dir = kDirRx;
  tp.Arm(Probe::kFilterVerdict, pred);

  const TraceFlow rx{0, 0, 0, 0, 0, kDirRx};
  const TraceFlow tx{0, 0, 0, 0, 0, kDirTx};
  tp.Emit(Probe::kFilterVerdict, 0, 5, 0, 0, 0, &rx);   // match
  tp.Emit(Probe::kFilterVerdict, 0, 6, 0, 0, 0, &rx);   // wrong pid
  tp.Emit(Probe::kFilterVerdict, 0, 5, 0, 0, 0, &tx);   // wrong dir
  tp.Emit(Probe::kFilterVerdict, 0, 5);                 // no flow at all
  EXPECT_EQ(tp.hits(Probe::kFilterVerdict), 1u);
  EXPECT_EQ(tp.filtered(Probe::kFilterVerdict), 3u);
  EXPECT_EQ(tp.Journal().size(), 1u);
}

TEST(TracepointTest, PredicateParseRenderRoundTrip) {
  ProbePredicate pred;
  ASSERT_TRUE(ProbePredicate::Parse(
      "pid=3,dir=tx,src_ip=10.0.0.1,dst_port=443,proto=17", &pred));
  EXPECT_EQ(pred.pid, 3u);
  EXPECT_EQ(pred.dir, kDirTx);
  EXPECT_EQ(pred.src_ip, 0x0a000001u);
  EXPECT_EQ(pred.dst_port, 443u);
  EXPECT_EQ(pred.proto, 17u);
  EXPECT_EQ(pred.Render(), "pid=3,dir=tx,src_ip=10.0.0.1,dst_port=443,proto=17");

  ProbePredicate again;
  ASSERT_TRUE(ProbePredicate::Parse(pred.Render(), &again));
  EXPECT_EQ(again.Render(), pred.Render());

  ProbePredicate any;
  ASSERT_TRUE(ProbePredicate::Parse("*", &any));
  EXPECT_TRUE(any.any());
  EXPECT_EQ(any.Render(), "*");

  ProbePredicate bad;
  EXPECT_FALSE(ProbePredicate::Parse("pid=abc", &bad));
  EXPECT_FALSE(ProbePredicate::Parse("nope=1", &bad));
  EXPECT_FALSE(ProbePredicate::Parse("dir=up", &bad));
  EXPECT_FALSE(ProbePredicate::Parse("src_ip=10.0.0", &bad));
  EXPECT_FALSE(ProbePredicate::Parse("dst_port=70000", &bad));
}

TEST(TracepointTest, RingKeepsNewestAndCountsOverwrites) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  tp.Arm(Probe::kSramAlloc);
  const size_t extra = 10;
  for (size_t i = 0; i < Tracepoints::kRingCapacity + extra; ++i) {
    tp.Emit(Probe::kSramAlloc, Tracepoints::kCoreNic, 0, i);
  }
  const auto journal = tp.Journal();
  ASSERT_EQ(journal.size(), Tracepoints::kRingCapacity);
  // Oldest records fell off the front: the journal starts at seq `extra`.
  EXPECT_EQ(journal.front().seq, extra);
  EXPECT_EQ(journal.back().seq, Tracepoints::kRingCapacity + extra - 1);
  EXPECT_EQ(tp.overwritten(), extra);
  EXPECT_EQ(reg.GetCounter("probe.records.dropped")->value(), extra);
}

TEST(TracepointTest, JournalMergesCoreRingsInEmitOrder) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  tp.Arm(Probe::kSramAlloc);
  tp.Arm(Probe::kSocketCall);
  tp.Emit(Probe::kSramAlloc, Tracepoints::kCoreNic, 0);
  tp.Emit(Probe::kSocketCall, Tracepoints::kCoreHost, 1);
  tp.Emit(Probe::kSramAlloc, Tracepoints::kCoreNic, 0);
  const auto journal = tp.Journal();
  ASSERT_EQ(journal.size(), 3u);
  for (size_t i = 0; i < journal.size(); ++i) {
    EXPECT_EQ(journal[i].seq, i);
  }
  EXPECT_EQ(journal[1].core, Tracepoints::kCoreHost);
}

TEST(TracepointTest, FreezeStopsAppendsButStillCountsHits) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  tp.Arm(Probe::kNicDrop);
  tp.Emit(Probe::kNicDrop, 0, 0);
  tp.Freeze();
  tp.Emit(Probe::kNicDrop, 0, 0);
  tp.Emit(Probe::kNicDrop, 0, 0);
  EXPECT_EQ(tp.hits(Probe::kNicDrop), 3u);  // the decisions still happened
  EXPECT_EQ(tp.Journal().size(), 1u);       // the pre-freeze tail is kept
  tp.Unfreeze();
  tp.Emit(Probe::kNicDrop, 0, 0);
  EXPECT_EQ(tp.Journal().size(), 2u);
}

TEST(TracepointTest, ClearDropsRecordsButKeepsArming) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  ProbePredicate pred;
  pred.pid = 9;
  tp.Arm(Probe::kNicDrop, pred);
  tp.Emit(Probe::kNicDrop, 0, 9);
  tp.Freeze();
  tp.Clear();
  EXPECT_TRUE(tp.Journal().empty());
  EXPECT_EQ(tp.hits(Probe::kNicDrop), 0u);
  EXPECT_FALSE(tp.frozen());
  EXPECT_TRUE(tp.armed(Probe::kNicDrop));
  EXPECT_EQ(tp.predicate(Probe::kNicDrop).pid, 9u);
  tp.Emit(Probe::kNicDrop, 0, 9);
  EXPECT_EQ(tp.Journal().size(), 1u);
  EXPECT_EQ(tp.Journal()[0].seq, 0u);  // sequence restarts after Clear
}

TEST(TracepointTest, DisarmRestoresTheZeroMask) {
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  tp.ArmAll();
  for (size_t i = 0; i < telemetry::kNumProbes; ++i) {
    EXPECT_TRUE(tp.armed(static_cast<Probe>(i)));
  }
  tp.DisarmAll();
  for (size_t i = 0; i < telemetry::kNumProbes; ++i) {
    EXPECT_FALSE(tp.armed(static_cast<Probe>(i)));
  }
  tp.Arm(Probe::kRingFull);
  tp.Disarm(Probe::kRingFull);
  EXPECT_FALSE(tp.armed(Probe::kRingFull));
}

TEST(TracepointTest, ListReportIsSortedAndByteStable) {
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  ProbePredicate pred;
  pred.dst_port = 443;
  tp.Arm(Probe::kFilterVerdict, pred);
  const std::string a = tp.ListReport();
  const std::string b = tp.ListReport();
  EXPECT_EQ(a, b);
  // Sorted by probe name: conntrack.transition precedes filter.verdict.
  EXPECT_LT(a.find("conntrack.transition"), a.find("filter.verdict"));
  EXPECT_NE(a.find("dst_port=443"), std::string::npos);
}

TEST(TracepointTest, JournalJsonIsByteStable) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "emits compile away at NORMAN_STATS_LEVEL=0";
  }
  telemetry::MetricsRegistry reg;
  Tracepoints tp(&reg);
  Nanos now = 7;
  tp.SetClock(&now);
  tp.Arm(Probe::kSocketCall);
  const TraceFlow flow{0x0a000001, 0x0a000002, 1, 2, 6, kDirRx};
  tp.Emit(Probe::kSocketCall, Tracepoints::kCoreHost, 3, 0, 80, 0, &flow);
  const std::string a = tp.JournalJson();
  EXPECT_EQ(a, tp.JournalJson());
  EXPECT_NE(a.find("\"probe\":\"socket.call\""), std::string::npos);
  EXPECT_NE(a.find("\"t\":7"), std::string::npos);
  EXPECT_NE(a.find("\"dir\":\"rx\""), std::string::npos);
}

}  // namespace
}  // namespace norman
