// Multi-queue dataplane sharding: RSS spread, explicit indirection errors,
// mid-flow re-steer with flow-cache partition invalidation, per-lane
// telemetry (steered counters, ring gauges, per-queue notify counters),
// the per-lane watchdog rules, and the --by-core dashboard's stability.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/health.h"
#include "src/nic/rss.h"
#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using net::FiveTuple;
using net::IpProto;
using net::Ipv4Address;

// --- RSS spread -------------------------------------------------------------

// Toeplitz-over-indirection must actually spread: across a few hundred
// distinct tuples every configured queue receives traffic and no steer
// result escapes [0, num_queues).
TEST(MulticoreRssTest, SpreadsAcrossAllQueues) {
  for (const size_t queues : {2u, 4u, 8u}) {
    SCOPED_TRACE("queues=" + std::to_string(queues));
    nic::RssEngine rss(static_cast<uint16_t>(queues));
    std::vector<size_t> hits(queues, 0);
    for (uint16_t i = 0; i < 512; ++i) {
      const FiveTuple t{Ipv4Address::FromOctets(10, 0, 0, 2),
                        Ipv4Address::FromOctets(10, 0, 0, 1),
                        static_cast<uint16_t>(4000 + i),
                        static_cast<uint16_t>(9000 + i), IpProto::kUdp};
      const uint16_t q = rss.Steer(t);
      ASSERT_LT(q, queues);
      ++hits[q];
    }
    for (size_t q = 0; q < queues; ++q) {
      EXPECT_GT(hits[q], 0u) << "queue " << q << " starved";
    }
  }
}

// Steering is a pure function of the tuple: the same flow never migrates
// on its own (migration happens only through explicit indirection writes).
TEST(MulticoreRssTest, SteeringIsStablePerFlow) {
  nic::RssEngine rss(4);
  const FiveTuple t{Ipv4Address::FromOctets(10, 0, 0, 2),
                    Ipv4Address::FromOctets(10, 0, 0, 1), 4000, 9000,
                    IpProto::kUdp};
  const uint16_t first = rss.Steer(t);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(rss.Steer(t), first);
  }
}

// --- Sharded end-to-end -----------------------------------------------------

// A sharded echo world: many flows spread across 4 lanes, every byte comes
// back, and the per-lane telemetry (steered counters, lane ring high
// waters) shows the spread actually happened on the wire path.
TEST(MulticoreShardingTest, ShardedEchoSpreadsAndDeliversEverything) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  ASSERT_TRUE(k.nic_control().EnableSharding(4).ok());

  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  const auto peer = Ipv4Address::FromOctets(10, 0, 0, 2);

  std::vector<StatusOr<Socket>> socks;
  for (int i = 0; i < 16; ++i) {
    socks.push_back(
        Socket::Connect(&k, pid, peer, static_cast<uint16_t>(5000 + i), {}));
    ASSERT_TRUE(socks.back().ok());
  }
  const std::vector<uint8_t> payload(256, 0xcd);
  for (auto& s : socks) {
    for (int r = 0; r < 4; ++r) {
      ASSERT_TRUE(s->Send(payload).ok());
    }
  }
  bed.sim().Run();

  // Every echo reply made it back up through its lane.
  uint8_t scratch[2048];
  for (auto& s : socks) {
    for (int r = 0; r < 4; ++r) {
      ASSERT_TRUE(s->RecvInto(scratch).ok());
    }
    EXPECT_FALSE(s->RecvInto(scratch).ok());  // nothing lost or duplicated
  }

  if (telemetry::kHotStatsEnabled) {
    // The steered counters account for every inbound frame, across >1 lane.
    const auto snap = bed.sim().metrics().Snapshot();
    int64_t steered = 0;
    int lanes_hit = 0;
    for (int q = 0; q < 4; ++q) {
      const auto it =
          snap.values.find("rss.steered.q" + std::to_string(q));
      if (it == snap.values.end()) continue;
      steered += it->second;
      lanes_hit += it->second > 0 ? 1 : 0;
    }
    EXPECT_EQ(steered, 64);  // 16 flows x 4 echoes
    EXPECT_GE(lanes_hit, 2) << "16 flows all hashed to one lane";
  }
  // The lane ingress rings saw real occupancy on the lanes that got flows.
  const auto snap = bed.sim().metrics().Snapshot();
  int64_t rx_high_water = 0;
  for (int q = 0; q < 4; ++q) {
    const auto it = snap.values.find("queue.nic.rx_ring.q" +
                                     std::to_string(q) + ".high_water");
    if (it != snap.values.end()) rx_high_water += it->second;
  }
  EXPECT_GT(rx_high_water, 0);
}

// The per-queue notification counters key on Notification::queue, so a
// sharded run's completion flow is attributable lane by lane — and the
// per-queue sum matches the aggregate drain counter.
TEST(MulticoreShardingTest, NotificationsCarryTheirLane) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "per-queue notify counters compile out at stats level 0";
  }
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  ASSERT_TRUE(k.nic_control().EnableSharding(4).ok());
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  const auto peer = Ipv4Address::FromOctets(10, 0, 0, 2);

  kernel::ConnectOptions copts;
  copts.notify_rx = true;
  std::vector<StatusOr<Socket>> socks;
  for (int i = 0; i < 8; ++i) {
    socks.push_back(Socket::Connect(&k, pid, peer,
                                    static_cast<uint16_t>(6000 + i), copts));
    ASSERT_TRUE(socks.back().ok());
  }
  // Block on RX first: notification drains ride the kernel's wakeup pump,
  // which only runs on behalf of a sleeping thread.
  int woken = 0;
  for (auto& s : socks) {
    ASSERT_TRUE(
        s->RecvBlocking([&woken](std::vector<uint8_t>) { ++woken; }).ok());
  }
  const std::vector<uint8_t> payload(128, 0xee);
  for (auto& s : socks) {
    ASSERT_TRUE(s->Send(payload).ok());
  }
  bed.sim().Run();
  EXPECT_EQ(woken, 8);

  const auto snap = bed.sim().metrics().Snapshot();
  int64_t per_queue = 0;
  for (int q = 0; q < 4; ++q) {
    const auto it =
        snap.values.find("kernel.notify.q" + std::to_string(q) + ".drained");
    if (it != snap.values.end()) per_queue += it->second;
  }
  const auto total = snap.values.find("kernel.notify.drained");
  ASSERT_NE(total, snap.values.end());
  EXPECT_GT(per_queue, 0);
  EXPECT_EQ(per_queue, total->second);
}

// --- Indirection table errors and mid-flow re-steer -------------------------

// Through the control plane too, a bad indirection write is an explicit
// error — not a silent modulo remap.
TEST(MulticoreShardingTest, ControlPlaneRejectsBadIndirection) {
  workload::TestBed bed;
  auto& cp = bed.kernel().nic_control();
  ASSERT_TRUE(cp.EnableSharding(4).ok());
  EXPECT_EQ(cp.SetRssIndirection(0, 4).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cp.SetRssIndirection(nic::RssEngine::kIndirectionEntries, 0)
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(cp.SetRssIndirection(0, 3).ok());
}

// Re-steering a live flow to another lane invalidates both affected flow
// cache partitions (the verdict cached on the old lane must not keep
// serving), and traffic keeps flowing correctly afterwards.
TEST(MulticoreShardingTest, MidFlowResteerInvalidatesPartitions) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.nic_control().EnableFlowCache(1024);
  ASSERT_TRUE(k.nic_control().EnableSharding(4).ok());
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  const auto peer = Ipv4Address::FromOctets(10, 0, 0, 2);

  auto sock = Socket::Connect(&k, pid, peer, 7000, {});
  ASSERT_TRUE(sock.ok());
  const std::vector<uint8_t> payload(200, 0xab);
  for (int r = 0; r < 8; ++r) {
    ASSERT_TRUE(sock->Send(payload).ok());
  }
  bed.sim().Run();
  uint8_t scratch[2048];
  int echoed = 0;
  while (sock->RecvInto(scratch).ok()) ++echoed;
  EXPECT_EQ(echoed, 8);

  const auto before = bed.sim().metrics().Snapshot();
  const auto inval_before = before.values.count("fastpath.invalidations")
                                ? before.values.at("fastpath.invalidations")
                                : 0;
  // Rewrite the whole indirection table onto lane 1: every slot whose old
  // queue differs migrates, invalidating the source and destination
  // partitions.
  auto& cp = k.nic_control();
  for (size_t i = 0; i < nic::RssEngine::kIndirectionEntries; ++i) {
    ASSERT_TRUE(cp.SetRssIndirection(i, 1).ok());
  }
  const auto after = bed.sim().metrics().Snapshot();
  const auto inval_after = after.values.count("fastpath.invalidations")
                               ? after.values.at("fastpath.invalidations")
                               : 0;
  EXPECT_GT(inval_after, inval_before);

  // The flow lives on across the migration.
  for (int r = 0; r < 4; ++r) {
    ASSERT_TRUE(sock->Send(payload).ok());
  }
  bed.sim().Run();
  echoed = 0;
  while (sock->RecvInto(scratch).ok()) ++echoed;
  EXPECT_EQ(echoed, 4);
}

// --- Per-lane watchdog ------------------------------------------------------

// One wedged lane must page as that lane, not hide inside an aggregate:
// back up q2's ingress ring for three sampler windows and only the
// "app.rx.q2" component trips; its siblings stay healthy.
TEST(MulticoreShardingTest, SingleStalledLaneTripsOnlyItsRule) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  ASSERT_TRUE(k.nic_control().EnableSharding(4).ok());

  auto* depth = bed.sim().metrics().GetGauge("queue.nic.rx_ring.q2.depth");
  for (int window = 1; window <= 3; ++window) {
    depth->Set(5 + window);  // backed up and not draining
    k.sampler().Sample(window * kMillisecond);
    k.watchdog().Evaluate(window * kMillisecond);
  }
  EXPECT_EQ(k.watchdog().StateOf("app.rx.q2"), telemetry::HealthState::kStalled);
  EXPECT_EQ(k.watchdog().StateOf("app.rx.q0"), telemetry::HealthState::kHealthy);
  EXPECT_EQ(k.watchdog().StateOf("app.rx.q1"), telemetry::HealthState::kHealthy);
  EXPECT_EQ(k.watchdog().StateOf("app.rx.q3"), telemetry::HealthState::kHealthy);

  // The lane drains: recovered.
  depth->Set(0);
  k.sampler().Sample(4 * kMillisecond);
  k.watchdog().Evaluate(4 * kMillisecond);
  EXPECT_EQ(k.watchdog().StateOf("app.rx.q2"), telemetry::HealthState::kHealthy);
}

// --- Telemetry shape --------------------------------------------------------

// All per-lane series are registered eagerly at construction — before any
// sharding or traffic — so the metric manifest has one shape regardless of
// configuration.
TEST(MulticoreShardingTest, PerLaneMetricNamesRegisteredEagerly) {
  workload::TestBed bed;  // no sharding, no traffic
  const auto names = bed.sim().metrics().MetricNames();
  auto has = [&names](const std::string& n) {
    for (const auto& name : names) {
      if (name == n) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("counter rss.rebalance"));
  for (int q = 0; q < 8; ++q) {
    const std::string qs = std::to_string(q);
    EXPECT_TRUE(has("counter rss.steered.q" + qs)) << qs;
    EXPECT_TRUE(has("gauge queue.nic.rx_ring.q" + qs + ".depth")) << qs;
    EXPECT_TRUE(has("gauge queue.nic.rx_ring.q" + qs + ".high_water")) << qs;
    EXPECT_TRUE(has("gauge queue.nic.tx_ring.q" + qs + ".depth")) << qs;
    EXPECT_TRUE(has("gauge queue.nic.tx_ring.q" + qs + ".high_water")) << qs;
    EXPECT_TRUE(has("counter kernel.notify.q" + qs + ".drained")) << qs;
  }
}

// --- norman-top --by-core ---------------------------------------------------

// The per-core dashboard is byte-stable for a deterministic sharded run and
// shows the lane resources plus every lane ring.
TEST(MulticoreShardingTest, TopByCoreIsByteStable) {
  auto run = [] {
    workload::TestBedOptions opts;
    opts.echo = true;
    workload::TestBed bed(opts);
    auto& k = bed.kernel();
    bed.sim().profiler().set_enabled(true);
    EXPECT_TRUE(k.nic_control().EnableSharding(4).ok());
    k.processes().AddUser(1, "u");
    const auto pid = *k.processes().Spawn(1, "app");
    const auto peer = Ipv4Address::FromOctets(10, 0, 0, 2);
    auto sock = Socket::Connect(&k, pid, peer, 7100, {});
    EXPECT_TRUE(sock.ok());
    const std::vector<uint8_t> payload(300, 0x5a);
    for (int r = 0; r < 6; ++r) {
      EXPECT_TRUE(sock->Send(payload).ok());
    }
    bed.sim().Run();
    return tools::TopByCore(bed.kernel(), bed.nic());
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("4 lanes"), std::string::npos);
  EXPECT_NE(a.find("nic.stages.q0"), std::string::npos);
  EXPECT_NE(a.find("nic.rx_ring.q3"), std::string::npos);
  EXPECT_NE(a.find("nic.tx_ring.q7"), std::string::npos);
}

// Sharding is one-shot: a second enable is a precondition failure, and an
// out-of-range queue count is rejected up front.
TEST(MulticoreShardingTest, EnableShardingValidatesItsArguments) {
  workload::TestBed bed;
  auto& cp = bed.kernel().nic_control();
  EXPECT_EQ(cp.EnableSharding(0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cp.EnableSharding(9).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(cp.EnableSharding(2).ok());
  EXPECT_EQ(cp.EnableSharding(4).code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace norman
