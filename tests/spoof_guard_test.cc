// TX anti-spoofing tests: forged headers from the zero-copy lane must be
// dropped at the NIC; honest traffic, kernel-originated frames, and the
// (deliberately) observable ARP case pass.
#include "src/dataplane/spoof_guard.h"

#include <gtest/gtest.h>

#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"
#include "src/net/packet_pool.h"

namespace norman {
namespace {

using net::Ipv4Address;
using net::MacAddress;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

class SpoofGuardTest : public ::testing::Test {
 protected:
  SpoofGuardTest() {
    bed_.kernel().processes().AddUser(1002, "charlie");
    rogue_pid_ = *bed_.kernel().processes().Spawn(1002, "rogue");
  }

  // A frame with an arbitrary forged tuple, sent through a socket's ring.
  net::PacketPtr ForgedFrame(uint16_t src_port, uint16_t dst_port,
                             Ipv4Address src_ip = Ipv4Address::FromOctets(
                                 10, 0, 0, 1)) {
    net::FrameEndpoints ep{bed_.kernel().options().host_mac,
                           MacAddress::ForHost(2), src_ip, kPeerIp};
    return net::MakePacket(net::BuildUdpFrame(
        ep, src_port, dst_port, std::vector<uint8_t>(16, 0x66)));
  }

  workload::TestBed bed_;
  kernel::Pid rogue_pid_ = 0;
};

TEST_F(SpoofGuardTest, HonestTrafficPasses) {
  auto sock = Socket::Connect(&bed_.kernel(), rogue_pid_, kPeerIp, 80, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("honest").ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 1u);
  EXPECT_EQ(bed_.kernel().spoof_guard().spoofed_drops(), 0u);
}

TEST_F(SpoofGuardTest, ForgedSourcePortDropped) {
  // The §2 partitioning policy allows postgres's src... a rogue forges a
  // *different source port* to masquerade as another connection.
  auto sock = Socket::Connect(&bed_.kernel(), rogue_pid_, kPeerIp, 80, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(
      sock->SendFrame(ForgedFrame(/*src_port=*/5432, /*dst_port=*/80))
          .ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 0u);
  EXPECT_EQ(bed_.kernel().spoof_guard().spoofed_drops(), 1u);
  EXPECT_EQ(bed_.nic().stats().tx_dropped(), 1u);
}

TEST_F(SpoofGuardTest, ForgedDestinationDropped) {
  // A connection is a 5-tuple grant: sending to a different destination
  // port through it is equally forged.
  auto sock = Socket::Connect(&bed_.kernel(), rogue_pid_, kPeerIp, 80, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->SendFrame(
                      ForgedFrame(sock->tuple().src_port, /*dst_port=*/22))
                  .ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 0u);
  EXPECT_EQ(bed_.kernel().spoof_guard().spoofed_drops(), 1u);
}

TEST_F(SpoofGuardTest, ForgedSourceAddressDropped) {
  auto sock = Socket::Connect(&bed_.kernel(), rogue_pid_, kPeerIp, 80, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->SendFrame(ForgedFrame(sock->tuple().src_port, 80,
                                          Ipv4Address::FromOctets(
                                              192, 168, 66, 66)))
                  .ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 0u);
  EXPECT_EQ(bed_.kernel().spoof_guard().spoofed_drops(), 1u);
}

TEST_F(SpoofGuardTest, GarbageBytesFromRingDropped) {
  auto sock = Socket::Connect(&bed_.kernel(), rogue_pid_, kPeerIp, 80, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->SendFrame(net::MakePacket(
                      std::vector<uint8_t>(7, 0xff)))  // not even Ethernet
                  .ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 0u);
  EXPECT_EQ(bed_.kernel().spoof_guard().spoofed_drops(), 1u);
}

TEST_F(SpoofGuardTest, AppArpIsObservableButAllowedByDefault) {
  // The debugging story (§2): the buggy flood reaches the network, fully
  // attributed — the guard does not silently fix the bug for Alice.
  auto sock = Socket::Connect(&bed_.kernel(), rogue_pid_, kPeerIp, 80, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->SendFrame(net::MakePacket(
                      net::BuildArpRequest(MacAddress::ForHost(0xbad),
                                           Ipv4Address::FromOctets(
                                               10, 0, 0, 99),
                                           kPeerIp)))
                  .ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 1u);
  EXPECT_EQ(bed_.kernel().spoof_guard().spoofed_drops(), 0u);
  ASSERT_EQ(bed_.kernel().arp().tx_observations().size(), 1u);
  EXPECT_EQ(bed_.kernel().arp().tx_observations()[0].owner.owner_pid,
            rogue_pid_);
}

TEST_F(SpoofGuardTest, StrictModeDropsAppArp) {
  // A registered connection emits ARP under a strict-mode guard.
  auto sock = Socket::Connect(&bed_.kernel(), rogue_pid_, kPeerIp, 80, {});
  ASSERT_TRUE(sock.ok());
  dataplane::SpoofGuard strict(&bed_.kernel().nic_control().flow_table(),
                               /*strict_arp=*/true);
  auto frame = net::BuildArpRequest(MacAddress::ForHost(1),
                                    Ipv4Address::FromOctets(10, 0, 0, 1),
                                    kPeerIp);
  net::Packet packet(frame);
  auto parsed = *net::ParseFrame(packet.bytes());
  overlay::PacketContext ctx;
  ctx.frame = packet.bytes();
  ctx.parsed = &parsed;
  ctx.direction = net::Direction::kTx;
  ctx.conn.conn_id = sock->conn_id();  // from a real app ring
  EXPECT_EQ(strict.Process(packet, ctx).verdict, nic::Verdict::kDrop);
  EXPECT_EQ(strict.spoofed_drops(), 1u);
}

TEST_F(SpoofGuardTest, KernelInjectedFramesExempt) {
  // NIC-generated ARP replies (no conn metadata) must pass: a peer ARPs
  // for the host and the reply reaches the wire.
  auto req = net::MakePacket(net::BuildArpRequest(
      MacAddress::ForHost(2), kPeerIp, bed_.kernel().options().host_ip));
  bed_.InjectFromNetwork(std::move(req), 100);
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 1u);
  EXPECT_EQ(bed_.kernel().spoof_guard().spoofed_drops(), 0u);
}

TEST_F(SpoofGuardTest, SpoofingCannotEvadePortPolicy) {
  // End-to-end: policy says only uid 1001 may hit 5432. The rogue (1002)
  // opens a connection to a *different* port and forges frames to 5432.
  bed_.kernel().processes().AddUser(1001, "bob");
  ASSERT_TRUE(tools::IptablesAppend(
                  &bed_.kernel(), kernel::kRootUid,
                  "-A OUTPUT -p udp --dport 5432 -m owner --uid-owner 1001 "
                  "-j ACCEPT")
                  .ok());
  ASSERT_TRUE(tools::IptablesAppend(&bed_.kernel(), kernel::kRootUid,
                                    "-A OUTPUT -p udp --dport 5432 -j DROP")
                  .ok());
  auto sock = Socket::Connect(&bed_.kernel(), rogue_pid_, kPeerIp, 80, {});
  ASSERT_TRUE(sock.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        sock->SendFrame(ForgedFrame(sock->tuple().src_port, 5432)).ok());
  }
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 0u);
  EXPECT_EQ(bed_.kernel().spoof_guard().spoofed_drops(), 10u);
}

}  // namespace
}  // namespace norman
