// Deeper qdisc property suites: byte-based WFQ fairness with heterogeneous
// packet sizes, DRR quantum proportionality, token-bucket sliding-window
// conformance, and cross-discipline no-loss/no-reorder invariants.
#include <gtest/gtest.h>

#include <deque>

#include "src/common/rng.h"
#include "src/dataplane/qdisc.h"
#include "src/nic/fifo_scheduler.h"
#include "tests/test_util.h"
#include "src/net/packet_pool.h"

namespace norman::dataplane {
namespace {

using overlay::ConnMetadata;

overlay::PacketContext CtxForUid(uint32_t uid) {
  overlay::PacketContext ctx;
  ctx.conn = ConnMetadata{uid, uid, uid + 100, 1, 0};
  return ctx;
}

net::PacketPtr SizedPacket(size_t bytes) {
  return net::MakePacket(std::vector<uint8_t>(bytes, 0x3c));
}

// WFQ must divide *bytes*, not packets: a class sending small packets and a
// class sending jumbo packets with equal weights get equal byte shares.
TEST(WfqPropertyTest, ByteFairnessWithHeterogeneousSizes) {
  WfqQdisc wfq(ClassifyByUid({{1, 1}, {2, 2}}));
  wfq.SetWeight(1, 1.0);
  wfq.SetWeight(2, 1.0);
  const auto ctx1 = CtxForUid(1);
  const auto ctx2 = CtxForUid(2);
  // Class 1: 100B packets; class 2: 1500B packets. Keep both backlogged.
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(wfq.Enqueue(SizedPacket(100), ctx1));
  }
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(wfq.Enqueue(SizedPacket(1500), ctx2));
  }
  uint64_t served_bytes = 0;
  while (served_bytes < 200'000) {
    auto p = wfq.Dequeue(0);
    ASSERT_NE(p, nullptr);
    served_bytes += p->size();
  }
  const double a = static_cast<double>(wfq.dequeued_bytes(1));
  const double b = static_cast<double>(wfq.dequeued_bytes(2));
  EXPECT_NEAR(a / b, 1.0, 0.1);
}

struct DrrCase {
  uint64_t quantum_a;
  uint64_t quantum_b;
};

// DRR with per-class quanta... our DrrQdisc uses a single quantum (classic
// Shreedhar-Varghese equal-share). Verify equal byte shares under size
// heterogeneity instead.
TEST(DrrPropertyTest, EqualByteSharesWithHeterogeneousSizes) {
  DrrQdisc drr(ClassifyByUid({{1, 1}, {2, 2}}), 1514,
               /*per_class_capacity=*/4096);
  const auto ctx1 = CtxForUid(1);
  const auto ctx2 = CtxForUid(2);
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(drr.Enqueue(SizedPacket(120), ctx1));
  }
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(drr.Enqueue(SizedPacket(1200), ctx2));
  }
  uint64_t bytes_a = 0, bytes_b = 0, served = 0;
  while (served < 300'000) {
    auto p = drr.Dequeue(0);
    ASSERT_NE(p, nullptr);
    served += p->size();
    (p->size() == 120 ? bytes_a : bytes_b) += p->size();
  }
  EXPECT_NEAR(static_cast<double>(bytes_a) / static_cast<double>(bytes_b),
              1.0, 0.15);
}

// Token bucket conformance: over ANY window [t1, t2] the released bytes
// must not exceed burst + rate * (t2 - t1).
TEST(TokenBucketPropertyTest, SlidingWindowConformance) {
  const BitsPerSecond rate = 100'000'000;  // 12.5 MB/s
  const uint64_t burst = 5000;
  TokenBucketQdisc tbf(rate, burst, 100000);
  const auto ctx = CtxForUid(1);
  Rng rng(99);

  struct Release {
    Nanos when;
    uint64_t bytes;
  };
  std::vector<Release> releases;
  Nanos now = 0;
  for (int step = 0; step < 5000; ++step) {
    // Random offered load, bursty.
    if (rng.NextBool(0.6)) {
      for (uint64_t i = 0; i < rng.NextBounded(5); ++i) {
        (void)tbf.Enqueue(SizedPacket(200 + rng.NextBounded(1300)), ctx);
      }
    }
    while (auto p = tbf.Dequeue(now)) {
      releases.push_back({now, p->size()});
    }
    now += static_cast<Nanos>(rng.NextBounded(20'000));
  }
  ASSERT_GT(releases.size(), 100u);
  // Check conformance over every window ending at each release (sampled).
  for (size_t end = 0; end < releases.size(); end += 7) {
    uint64_t bytes = 0;
    for (size_t start = end + 1; start-- > 0;) {
      bytes += releases[start].bytes;
      const double window_s =
          static_cast<double>(releases[end].when - releases[start].when) /
          1e9;
      const double allowed = static_cast<double>(burst) +
                             window_s * static_cast<double>(rate) / 8.0 +
                             1500;  // one packet of slack (quantization)
      ASSERT_LE(static_cast<double>(bytes), allowed)
          << "window [" << start << "," << end << "]";
      if (start == 0) {
        break;
      }
    }
  }
}

// No discipline may lose or duplicate accepted packets, and FIFO must not
// reorder within a class.
TEST(QdiscInvariantTest, ConservationAndPerClassOrder) {
  Rng rng(1234);
  const std::vector<std::function<std::unique_ptr<nic::Scheduler>()>>
      factories = {
          [] { return std::make_unique<nic::FifoScheduler>(); },
          [] {
            return std::make_unique<PrioQdisc>(
                2, ClassifyByUid({{1, 0}, {2, 1}}));
          },
          [] {
            return std::make_unique<DrrQdisc>(
                ClassifyByUid({{1, 1}, {2, 2}}), 1514);
          },
          [] {
            auto q = std::make_unique<WfqQdisc>(
                ClassifyByUid({{1, 1}, {2, 2}}));
            q->SetWeight(1, 3.0);
            return q;
          },
      };
  for (const auto& make : factories) {
    auto qdisc = make();
    // Tag packets with per-class sequence numbers in the payload.
    std::map<uint32_t, uint32_t> next_seq;
    std::map<uint32_t, uint32_t> last_dequeued;
    uint64_t enqueued = 0, dropped = 0;
    for (int i = 0; i < 2000; ++i) {
      const uint32_t uid = rng.NextBool(0.5) ? 1 : 2;
      auto ctx = CtxForUid(uid);
      auto p = SizedPacket(64);
      const uint32_t seq = next_seq[uid]++;
      auto bytes = p->mutable_bytes();
      bytes[0] = static_cast<uint8_t>(uid);
      bytes[1] = static_cast<uint8_t>(seq >> 16);
      bytes[2] = static_cast<uint8_t>(seq >> 8);
      bytes[3] = static_cast<uint8_t>(seq);
      if (qdisc->Enqueue(std::move(p), ctx)) {
        ++enqueued;
      } else {
        ++dropped;
        --next_seq[uid];
      }
    }
    uint64_t dequeued = 0;
    while (auto p = qdisc->Dequeue(0)) {
      ++dequeued;
      const auto bytes = p->bytes();
      const uint32_t uid = bytes[0];
      const uint32_t seq = (uint32_t{bytes[1]} << 16) |
                           (uint32_t{bytes[2]} << 8) | bytes[3];
      // Per-class FIFO order preserved by every discipline.
      if (last_dequeued.contains(uid)) {
        EXPECT_EQ(seq, last_dequeued[uid] + 1)
            << qdisc->name() << " reordered class " << uid;
      } else {
        EXPECT_EQ(seq, 0u) << qdisc->name();
      }
      last_dequeued[uid] = seq;
    }
    EXPECT_EQ(dequeued, enqueued) << qdisc->name() << " lost packets";
    EXPECT_EQ(qdisc->backlog_packets(), 0u) << qdisc->name();
  }
}

}  // namespace
}  // namespace norman::dataplane
