// Shared helpers for Norman tests: canned frames, contexts, and an echo
// network that loops TX frames back as RX.
#ifndef NORMAN_TESTS_TEST_UTIL_H_
#define NORMAN_TESTS_TEST_UTIL_H_

#include <memory>
#include <vector>

#include "src/net/packet.h"
#include "src/net/packet_builder.h"
#include "src/net/parsed_packet.h"
#include "src/overlay/packet_context.h"

namespace norman::test {

inline constexpr auto kLocalIp = net::Ipv4Address::FromOctets(10, 0, 0, 1);
inline constexpr auto kRemoteIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);

inline net::FrameEndpoints LocalToRemote() {
  return {net::MacAddress::ForHost(1), net::MacAddress::ForHost(2), kLocalIp,
          kRemoteIp};
}

inline net::FrameEndpoints RemoteToLocal() {
  return {net::MacAddress::ForHost(2), net::MacAddress::ForHost(1), kRemoteIp,
          kLocalIp};
}

// A frame + parse + context bundle whose lifetimes are tied together.
struct ContextBundle {
  std::vector<uint8_t> frame;
  net::Packet packet;
  net::ParsedPacket parsed;
  overlay::PacketContext ctx;
};

inline std::unique_ptr<ContextBundle> MakeUdpContext(
    uint16_t src_port, uint16_t dst_port, net::Direction dir,
    overlay::ConnMetadata owner = {}, size_t payload = 32,
    uint8_t dscp = 0) {
  auto b = std::make_unique<ContextBundle>();
  const auto ep =
      dir == net::Direction::kTx ? LocalToRemote() : RemoteToLocal();
  b->frame = net::BuildUdpFrame(ep, src_port, dst_port,
                                std::vector<uint8_t>(payload, 0xcc), dscp);
  b->packet = net::Packet(b->frame);
  b->parsed = *net::ParseFrame(b->packet.bytes());
  b->ctx.frame = b->packet.bytes();
  b->ctx.parsed = &b->parsed;
  b->ctx.conn = owner;
  b->ctx.direction = dir;
  b->packet.meta().direction = dir;
  return b;
}

inline std::unique_ptr<ContextBundle> MakeTcpContext(
    uint16_t src_port, uint16_t dst_port, uint8_t flags, net::Direction dir,
    overlay::ConnMetadata owner = {}, size_t payload = 0) {
  auto b = std::make_unique<ContextBundle>();
  const auto ep =
      dir == net::Direction::kTx ? LocalToRemote() : RemoteToLocal();
  b->frame = net::BuildTcpFrame(ep, src_port, dst_port, 1, 1, flags,
                                std::vector<uint8_t>(payload, 0xdd));
  b->packet = net::Packet(b->frame);
  b->parsed = *net::ParseFrame(b->packet.bytes());
  b->ctx.frame = b->packet.bytes();
  b->ctx.parsed = &b->parsed;
  b->ctx.conn = owner;
  b->ctx.direction = dir;
  b->packet.meta().direction = dir;
  return b;
}

}  // namespace norman::test

#endif  // NORMAN_TESTS_TEST_UTIL_H_
