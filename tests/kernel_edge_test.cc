// Kernel edge cases: waiter lifecycle across close, multiple concurrent
// waiters, notification-queue overflow recovery, rate-limit cleanup on
// close, ephemeral-port wraparound, and exited-process handling.
#include <gtest/gtest.h>

#include "src/norman/socket.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"
#include "src/net/packet_pool.h"

namespace norman::kernel {
namespace {

using net::Ipv4Address;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

class KernelEdgeTest : public ::testing::Test {
 protected:
  KernelEdgeTest() {
    bed_.kernel().processes().AddUser(1, "u");
    pid_ = *bed_.kernel().processes().Spawn(1, "app");
  }
  workload::TestBed bed_;
  Pid pid_ = 0;
};

TEST_F(KernelEdgeTest, CloseWithParkedWaiterDoesNotCrashOrWake) {
  ConnectOptions opts;
  opts.notify_rx = true;
  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 100,
                                      opts);
  ASSERT_TRUE(sock.ok());
  bool woke = false;
  ASSERT_TRUE(
      bed_.kernel().BlockOnRx(sock->conn_id(), [&] { woke = true; }).ok());
  ASSERT_TRUE(bed_.kernel().Close(sock->conn_id()).ok());
  // Traffic for the dead connection goes to the host path, wakes nobody.
  bed_.InjectUdpFromPeer(100, sock->tuple().src_port, 10, 1000);
  bed_.sim().Run();
  EXPECT_FALSE(woke);
}

TEST_F(KernelEdgeTest, MultipleWaitersWakeOnDistinctArrivals) {
  ConnectOptions opts;
  opts.notify_rx = true;
  auto s1 = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 101,
                                    opts);
  auto s2 = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 102,
                                    opts);
  ASSERT_TRUE(s1.ok() && s2.ok());
  int woke1 = 0, woke2 = 0;
  ASSERT_TRUE(
      bed_.kernel().BlockOnRx(s1->conn_id(), [&] { ++woke1; }).ok());
  ASSERT_TRUE(
      bed_.kernel().BlockOnRx(s2->conn_id(), [&] { ++woke2; }).ok());
  // Only s2's traffic arrives.
  bed_.InjectUdpFromPeer(102, s2->tuple().src_port, 10, 1000);
  bed_.sim().Run();
  EXPECT_EQ(woke1, 0);
  EXPECT_EQ(woke2, 1);
  // Now s1's.
  bed_.InjectUdpFromPeer(101, s1->tuple().src_port, 10,
                         bed_.sim().Now() + 1000);
  bed_.sim().Run();
  EXPECT_EQ(woke1, 1);
  EXPECT_EQ(woke2, 1);
}

TEST_F(KernelEdgeTest, TwoWaitersOnOneConnectionBothWake) {
  ConnectOptions opts;
  opts.notify_rx = true;
  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 103,
                                      opts);
  ASSERT_TRUE(sock.ok());
  int wakes = 0;
  ASSERT_TRUE(
      bed_.kernel().BlockOnRx(sock->conn_id(), [&] { ++wakes; }).ok());
  ASSERT_TRUE(
      bed_.kernel().BlockOnRx(sock->conn_id(), [&] { ++wakes; }).ok());
  bed_.InjectUdpFromPeer(103, sock->tuple().src_port, 10, 1000);
  bed_.sim().Run();
  // One notification wakes all matching waiters (they re-check the ring).
  EXPECT_EQ(wakes, 2);
}

TEST_F(KernelEdgeTest, NotificationOverflowIsLossyButRecoverable) {
  ConnectOptions opts;
  opts.notify_rx = true;
  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 104,
                                      opts);
  ASSERT_TRUE(sock.ok());
  // Notifications accumulate while the app polls the ring directly without
  // ever blocking (nobody consumes the queue): after >1024 deliveries the
  // notification queue overflows — lossy by design.
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 200; ++i) {
      bed_.InjectUdpFromPeer(104, sock->tuple().src_port, 10,
                             bed_.sim().Now() + 1000 + i * 100);
    }
    bed_.sim().Run();
    while (sock->RecvFrame() != nullptr) {
    }
  }
  auto* q = bed_.kernel().nic_control().GetNotificationQueue(pid_);
  ASSERT_NE(q, nullptr);
  EXPECT_GT(q->overflows(), 0u);
  // A subsequent blocking receive still works despite the lost
  // notifications (the stale ones are drained; fresh data wakes normally).
  bool woke = false;
  ASSERT_TRUE(sock->RecvBlocking([&](std::vector<uint8_t>) { woke = true; })
                  .ok());
  bed_.InjectUdpFromPeer(104, sock->tuple().src_port, 10,
                         bed_.sim().Now() + 1000);
  bed_.sim().Run();
  EXPECT_TRUE(woke);
}

TEST_F(KernelEdgeTest, RateLimitClearedOnClose) {
  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 105,
                                      {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(bed_.kernel()
                  .SetConnRateLimit(kRootUid, sock->conn_id(), 1'000'000,
                                    100)
                  .ok());
  const auto conn = sock->conn_id();
  ASSERT_TRUE(bed_.kernel().Close(conn).ok());
  // Setting a limit on the dead connection now fails cleanly.
  EXPECT_EQ(bed_.kernel()
                .SetConnRateLimit(kRootUid, conn, 1'000'000, 100)
                .code(),
            StatusCode::kNotFound);
}

TEST_F(KernelEdgeTest, ExitedProcessCannotConnect) {
  ASSERT_TRUE(bed_.kernel().processes().Exit(pid_).ok());
  EXPECT_EQ(bed_.kernel().Connect(pid_, kPeerIp, 80, {}).status().code(),
            StatusCode::kNotFound);
}

TEST_F(KernelEdgeTest, ManyConnectionsGetUniquePorts) {
  std::set<uint16_t> ports;
  for (int i = 0; i < 500; ++i) {
    auto s = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp,
                                     static_cast<uint16_t>(1 + i), {});
    ASSERT_TRUE(s.ok());
    EXPECT_TRUE(ports.insert(s->tuple().src_port).second)
        << "duplicate ephemeral port at " << i;
  }
}

TEST_F(KernelEdgeTest, SnifferSurvivesConnectionChurn) {
  ASSERT_TRUE(bed_.kernel().StartCapture(kRootUid).ok());
  for (int round = 0; round < 30; ++round) {
    auto s = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp,
                                     static_cast<uint16_t>(600 + round), {});
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(s->Send("churn").ok());
    bed_.sim().Run();
    ASSERT_TRUE(s->Close().ok());
  }
  EXPECT_EQ(bed_.kernel().sniffer().captured(), 30u);
  EXPECT_EQ(bed_.egress_frames(), 30u);
}

TEST_F(KernelEdgeTest, InputChainMatchesDestinationOwner) {
  // RX packets carry the *destination* connection's owner metadata, so
  // INPUT rules can be scoped to the receiving user — e.g. drop all
  // inbound traffic for uid 2 without touching uid 1.
  bed_.kernel().processes().AddUser(2, "v");
  const auto pid2 = *bed_.kernel().processes().Spawn(2, "victim");
  dataplane::FilterRule rule;
  rule.direction = net::Direction::kRx;
  rule.owner_uid = 2;
  rule.action = dataplane::FilterAction::kDrop;
  ASSERT_TRUE(
      bed_.kernel().AppendFilterRule(kRootUid, Chain::kInput, rule).ok());

  auto s1 = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 200, {});
  auto s2 = norman::Socket::Connect(&bed_.kernel(), pid2, kPeerIp, 201, {});
  ASSERT_TRUE(s1.ok() && s2.ok());
  bed_.InjectUdpFromPeer(200, s1->tuple().src_port, 10, 1000);
  bed_.InjectUdpFromPeer(201, s2->tuple().src_port, 10, 2000);
  bed_.sim().Run();
  EXPECT_NE(s1->RecvFrame(), nullptr);  // uid 1: delivered
  EXPECT_EQ(s2->RecvFrame(), nullptr);  // uid 2: dropped on INPUT
  EXPECT_EQ(bed_.nic().stats().rx_dropped(), 1u);
}

TEST_F(KernelEdgeTest, TcpSocketSequenceNumbersAdvance) {
  ConnectOptions opts;
  opts.proto = net::IpProto::kTcp;
  auto sock = norman::Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 202,
                                      opts);
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send(std::string(10, 'a')).ok());
  ASSERT_TRUE(sock->Send(std::string(10, 'b')).ok());
  bed_.sim().Run();
  ASSERT_EQ(bed_.egress_frames(), 2u);
  const auto p1 = net::ParseFrame(bed_.egress()[0]->bytes());
  const auto p2 = net::ParseFrame(bed_.egress()[1]->bytes());
  ASSERT_TRUE(p1->is_tcp() && p2->is_tcp());
  EXPECT_EQ(p2->tcp->seq, p1->tcp->seq + 10);
}

TEST_F(KernelEdgeTest, PayloadViewOfNonIpFrameIsEmpty) {
  auto frame = net::MakePacket(std::vector<uint8_t>(20, 0));
  EXPECT_TRUE(norman::Socket::Payload(*frame).empty());
}

}  // namespace
}  // namespace norman::kernel
