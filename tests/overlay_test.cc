#include <gtest/gtest.h>

#include "src/net/packet_builder.h"
#include "src/net/parsed_packet.h"
#include "src/overlay/assembler.h"
#include "src/overlay/interpreter.h"
#include "src/overlay/verifier.h"

namespace norman::overlay {
namespace {

using net::FrameEndpoints;
using net::Ipv4Address;
using net::MacAddress;

// A UDP frame plus parse + context, bundled for test convenience.
struct TestPacket {
  std::vector<uint8_t> frame;
  net::ParsedPacket parsed;
  PacketContext ctx;
};

TestPacket MakeUdpPacket(uint16_t src_port, uint16_t dst_port,
                         uint32_t owner_uid = 1000,
                         uint32_t owner_pid = 4242) {
  TestPacket tp;
  FrameEndpoints ep{MacAddress::ForHost(1), MacAddress::ForHost(2),
                    Ipv4Address::FromOctets(10, 0, 0, 1),
                    Ipv4Address::FromOctets(10, 0, 0, 2)};
  const std::vector<uint8_t> payload(32, 0xee);
  tp.frame = BuildUdpFrame(ep, src_port, dst_port, payload);
  tp.parsed = *net::ParseFrame(tp.frame);
  tp.ctx.frame = tp.frame;
  tp.ctx.parsed = &tp.parsed;
  tp.ctx.conn = ConnMetadata{7, owner_uid, owner_pid, 3};
  tp.ctx.direction = net::Direction::kTx;
  return tp;
}

int64_t MustRun(const Program& prog, const PacketContext& ctx) {
  EXPECT_TRUE(VerifyProgram(prog).ok()) << VerifyProgram(prog);
  auto r = Execute(prog, ctx);
  EXPECT_TRUE(r.ok()) << r.status();
  return r->verdict;
}

TEST(InterpreterTest, RetImmediate) {
  Program p{Instruction::RetImm(42)};
  const auto tp = MakeUdpPacket(1, 2);
  EXPECT_EQ(MustRun(p, tp.ctx), 42);
}

TEST(InterpreterTest, RegistersStartAtZero) {
  Program p{Instruction::RetReg(5)};
  const auto tp = MakeUdpPacket(1, 2);
  EXPECT_EQ(MustRun(p, tp.ctx), 0);
}

TEST(InterpreterTest, AluOperations) {
  // r1 = 10; r1 += 5; r1 *= 3; r1 ^= 1; r1 <<= 2; ret r1 -> ((45^1)<<2)
  Program p{
      Instruction::Ldi(1, 10),
      Instruction::AluImm(Opcode::kAdd, 1, 5),
      Instruction::AluImm(Opcode::kMul, 1, 3),
      Instruction::AluImm(Opcode::kXor, 1, 1),
      Instruction::AluImm(Opcode::kShl, 1, 2),
      Instruction::RetReg(1),
  };
  const auto tp = MakeUdpPacket(1, 2);
  EXPECT_EQ(MustRun(p, tp.ctx), ((45 ^ 1) << 2));
}

TEST(InterpreterTest, RegisterToRegisterAlu) {
  Program p{
      Instruction::Ldi(1, 100),
      Instruction::Ldi(2, 33),
      Instruction::AluReg(Opcode::kSub, 1, 2),
      Instruction::RetReg(1),
  };
  const auto tp = MakeUdpPacket(1, 2);
  EXPECT_EQ(MustRun(p, tp.ctx), 67);
}

TEST(InterpreterTest, FieldLoads) {
  const auto tp = MakeUdpPacket(5432, 3306, /*uid=*/1001, /*pid=*/777);
  struct Case {
    Field field;
    uint64_t expected;
  };
  const Case cases[] = {
      {Field::kEthType, 0x0800},
      {Field::kIsIpv4, 1},
      {Field::kIsArp, 0},
      {Field::kIpProto, 17},
      {Field::kSrcPort, 5432},
      {Field::kDstPort, 3306},
      {Field::kOwnerUid, 1001},
      {Field::kOwnerPid, 777},
      {Field::kConnId, 7},
      {Field::kOwnerCgroup, 3},
      {Field::kDirection, 0},
      {Field::kPayloadLen, 32},
      {Field::kIpSrc, Ipv4Address::FromOctets(10, 0, 0, 1).addr},
      {Field::kIpDst, Ipv4Address::FromOctets(10, 0, 0, 2).addr},
      {Field::kTcpFlags, 0},
  };
  for (const auto& c : cases) {
    Program p{Instruction::Ldf(1, c.field), Instruction::RetReg(1)};
    EXPECT_EQ(static_cast<uint64_t>(MustRun(p, tp.ctx)), c.expected)
        << FieldName(c.field);
  }
}

TEST(InterpreterTest, ByteProbeInAndOutOfBounds) {
  const auto tp = MakeUdpPacket(1, 2);
  {
    Program p{Instruction::Ldb(1, 0), Instruction::RetReg(1)};
    EXPECT_EQ(MustRun(p, tp.ctx), tp.frame[0]);
  }
  {
    Program p{Instruction::Ldb(1, 200), Instruction::RetReg(1)};
    EXPECT_EQ(MustRun(p, tp.ctx), 0);  // past end reads 0
  }
}

TEST(InterpreterTest, ConditionalBranchTakenAndNot) {
  const auto tp = MakeUdpPacket(100, 200);
  // if dst_port == 200 ret 1 else ret 0
  Program p{
      Instruction::Ldf(1, Field::kDstPort),
      Instruction::JmpCmpImm(Opcode::kJeq, 1, 200, 3),
      Instruction::RetImm(0),
      Instruction::RetImm(1),
  };
  EXPECT_EQ(MustRun(p, tp.ctx), 1);
  const auto tp2 = MakeUdpPacket(100, 999);
  EXPECT_EQ(MustRun(p, tp2.ctx), 0);
}

TEST(InterpreterTest, AllComparisonOps) {
  struct Case {
    Opcode op;
    int64_t cmp;
    int64_t expected;  // 1 if branch taken
  };
  // r1 holds 50.
  const Case cases[] = {
      {Opcode::kJeq, 50, 1}, {Opcode::kJeq, 51, 0}, {Opcode::kJne, 51, 1},
      {Opcode::kJne, 50, 0}, {Opcode::kJgt, 49, 1}, {Opcode::kJgt, 50, 0},
      {Opcode::kJlt, 51, 1}, {Opcode::kJlt, 50, 0}, {Opcode::kJge, 50, 1},
      {Opcode::kJge, 51, 0}, {Opcode::kJle, 50, 1}, {Opcode::kJle, 49, 0},
  };
  const auto tp = MakeUdpPacket(1, 2);
  for (const auto& c : cases) {
    Program p{
        Instruction::Ldi(1, 50),
        Instruction::JmpCmpImm(c.op, 1, c.cmp, 3),
        Instruction::RetImm(0),
        Instruction::RetImm(1),
    };
    EXPECT_EQ(MustRun(p, tp.ctx), c.expected)
        << OpcodeName(c.op) << " vs " << c.cmp;
  }
}

TEST(InterpreterTest, InstructionCountReported) {
  Program p{
      Instruction::Ldi(1, 1),
      Instruction::Ldi(2, 2),
      Instruction::RetImm(0),
  };
  const auto tp = MakeUdpPacket(1, 2);
  auto r = Execute(p, tp.ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->instructions_executed, 3u);
}

TEST(InterpreterTest, UnverifiedFallOffEndFails) {
  Program p{Instruction::Ldi(1, 1)};
  const auto tp = MakeUdpPacket(1, 2);
  EXPECT_FALSE(Execute(p, tp.ctx).ok());
}

// --- Verifier ---

TEST(VerifierTest, AcceptsMinimalProgram) {
  EXPECT_TRUE(VerifyProgram({Instruction::RetImm(1)}).ok());
}

TEST(VerifierTest, RejectsEmpty) {
  EXPECT_FALSE(VerifyProgram({}).ok());
}

TEST(VerifierTest, RejectsOverlongProgram) {
  Program p(kMaxProgramLength + 1, Instruction::RetImm(0));
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(VerifierTest, RejectsBackwardJump) {
  Program p{
      Instruction::Ldi(1, 0),
      Instruction::JmpCmpImm(Opcode::kJeq, 1, 0, 0),  // backward
      Instruction::RetImm(0),
  };
  auto s = VerifyProgram(p);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("backward"), std::string::npos);
}

TEST(VerifierTest, RejectsSelfJump) {
  Program p{
      Instruction::Jmp(0),
      Instruction::RetImm(0),
  };
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(VerifierTest, RejectsOutOfBoundsJump) {
  Program p{
      Instruction::JmpCmpImm(Opcode::kJeq, 1, 0, 99),
      Instruction::RetImm(0),
  };
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(VerifierTest, RejectsFallOffEnd) {
  Program p{Instruction::Ldi(1, 5)};
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(VerifierTest, RejectsTrailingUnconditionalJump) {
  Program p{Instruction::RetImm(0), Instruction::Jmp(1)};
  EXPECT_FALSE(VerifyProgram(p).ok());
}

TEST(VerifierTest, RejectsBadRegister) {
  Instruction bad = Instruction::Ldi(99, 0);
  EXPECT_FALSE(VerifyProgram({bad, Instruction::RetImm(0)}).ok());
}

TEST(VerifierTest, RejectsBadFieldId) {
  Instruction bad = Instruction::Ldf(1, static_cast<Field>(200));
  EXPECT_FALSE(VerifyProgram({bad, Instruction::RetImm(0)}).ok());
}

TEST(VerifierTest, RejectsBadByteOffset) {
  EXPECT_FALSE(
      VerifyProgram({Instruction::Ldb(1, 9999), Instruction::RetImm(0)})
          .ok());
  EXPECT_FALSE(
      VerifyProgram({Instruction::Ldb(1, -1), Instruction::RetImm(0)}).ok());
}

TEST(VerifierTest, RejectsHugeShiftImmediate) {
  EXPECT_FALSE(VerifyProgram({Instruction::AluImm(Opcode::kShl, 1, 64),
                              Instruction::RetImm(0)})
                   .ok());
  EXPECT_TRUE(VerifyProgram({Instruction::AluImm(Opcode::kShl, 1, 63),
                             Instruction::RetImm(0)})
                  .ok());
}

// --- Assembler ---

TEST(AssemblerTest, AssemblesAndRunsFilter) {
  constexpr std::string_view kSource = R"(
      ; accept only UDP to port 53
      ldf r1, ip_proto
      jne r1, 17, drop
      ldf r2, dst_port
      jeq r2, 53, accept
  drop:
      ret 0
  accept:
      ret 1
  )";
  auto prog = Assemble(kSource);
  ASSERT_TRUE(prog.ok()) << prog.status();
  ASSERT_TRUE(VerifyProgram(*prog).ok()) << VerifyProgram(*prog);

  const auto dns = MakeUdpPacket(1234, 53);
  const auto web = MakeUdpPacket(1234, 80);
  EXPECT_EQ(Execute(*prog, dns.ctx)->verdict, 1);
  EXPECT_EQ(Execute(*prog, web.ctx)->verdict, 0);
}

TEST(AssemblerTest, LabelOnSameLineAsInstruction) {
  auto prog = Assemble("start: ret 7");
  ASSERT_TRUE(prog.ok()) << prog.status();
  EXPECT_EQ(prog->size(), 1u);
  EXPECT_EQ((*prog)[0], Instruction::RetImm(7));
}

TEST(AssemblerTest, HexImmediates) {
  auto prog = Assemble("ldi r1, 0x0800\nret r1");
  ASSERT_TRUE(prog.ok()) << prog.status();
  const auto tp = MakeUdpPacket(1, 2);
  EXPECT_EQ(MustRun(*prog, tp.ctx), 0x0800);
}

TEST(AssemblerTest, NegativeImmediates) {
  auto prog = Assemble("ldi r1, -5\nret r1");
  ASSERT_TRUE(prog.ok()) << prog.status();
  ASSERT_EQ((*prog)[0].imm, -5);
}

TEST(AssemblerTest, CommentsAndBlankLines) {
  auto prog = Assemble("# hash comment\n\n  ; semi comment\nret 1 ; tail\n");
  ASSERT_TRUE(prog.ok()) << prog.status();
  EXPECT_EQ(prog->size(), 1u);
}

TEST(AssemblerTest, ErrorsCarryLineNumbers) {
  auto prog = Assemble("ret 1\nbogus r1, r2\n");
  ASSERT_FALSE(prog.ok());
  EXPECT_NE(prog.status().message().find("line 2"), std::string::npos);
}

TEST(AssemblerTest, UnknownLabelFails) {
  auto prog = Assemble("jmp nowhere\nret 0");
  EXPECT_FALSE(prog.ok());
}

TEST(AssemblerTest, DuplicateLabelFails) {
  auto prog = Assemble("a: ret 0\na: ret 1");
  EXPECT_FALSE(prog.ok());
}

TEST(AssemblerTest, WrongOperandCountFails) {
  EXPECT_FALSE(Assemble("ldi r1\nret 0").ok());
  EXPECT_FALSE(Assemble("ret 0, 1").ok());
  EXPECT_FALSE(Assemble("jeq r1, 2\nret 0").ok());
}

TEST(AssemblerTest, BadRegisterFails) {
  EXPECT_FALSE(Assemble("ldi r16, 0\nret 0").ok());
  EXPECT_FALSE(Assemble("ldi rx, 0\nret 0").ok());
}

TEST(AssemblerTest, UnknownFieldFails) {
  EXPECT_FALSE(Assemble("ldf r1, not_a_field\nret 0").ok());
}

TEST(AssemblerTest, DisassembleRoundTrip) {
  constexpr std::string_view kSource = R"(
      ldf r1, owner_uid
      jeq r1, 1000, yes
      ldb r2, 14
      add r2, r1
      shr r2, 3
      ret r2
  yes:
      ret 1
  )";
  auto prog = Assemble(kSource);
  ASSERT_TRUE(prog.ok()) << prog.status();
  const std::string text = Disassemble(*prog);
  // Disassembly mentions each mnemonic and resolves fields symbolically.
  EXPECT_NE(text.find("ldf r1, owner_uid"), std::string::npos);
  EXPECT_NE(text.find("jeq r1, 1000, 6"), std::string::npos);
  EXPECT_NE(text.find("ret 1"), std::string::npos);
}

TEST(AssemblerTest, RegisterComparandJump) {
  constexpr std::string_view kSource = R"(
      ldf r1, src_port
      ldf r2, dst_port
      jeq r1, r2, same
      ret 0
  same:
      ret 1
  )";
  auto prog = Assemble(kSource);
  ASSERT_TRUE(prog.ok()) << prog.status();
  const auto same = MakeUdpPacket(77, 77);
  const auto diff = MakeUdpPacket(77, 78);
  EXPECT_EQ(MustRun(*prog, same.ctx), 1);
  EXPECT_EQ(MustRun(*prog, diff.ctx), 0);
}

}  // namespace
}  // namespace norman::overlay
