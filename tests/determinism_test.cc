// Reproducibility guarantees: identical seeds and configurations must
// produce bit-identical virtual-time behavior — the property every number
// in EXPERIMENTS.md rests on. Plus the assembler/disassembler round-trip.
#include <gtest/gtest.h>

#include "src/norman/socket.h"
#include "src/overlay/assembler.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

struct RunTrace {
  uint64_t egress_frames = 0;
  uint64_t egress_bytes = 0;
  Nanos final_time = 0;
  std::vector<Nanos> completions;
  uint64_t events = 0;
  // Profiler exports, captured when the run had attribution enabled.
  std::string folded_stacks;
  std::string prof_json;
  // Tracepoint journal, captured when the run had every probe armed.
  std::string journal_json;
};

RunTrace RunWorld(uint64_t seed, uint32_t trace_sample = 0,
                  bool monitor = false, bool fastpath = false,
                  uint32_t dispatch_batch = 0, bool profiler = false,
                  bool tracepoints = false, uint32_t shard_queues = 0) {
  workload::TestBedOptions opts;
  opts.echo = true;
  if (monitor) {
    // Fast ticks so sampler/watchdog evaluations interleave densely with
    // the traffic they must not perturb.
    opts.kernel.housekeeping_period = 250 * kMicrosecond;
  }
  workload::TestBed bed(opts);
  if (dispatch_batch != 0) {
    bed.sim().set_dispatch_batch(dispatch_batch);
  }
  bed.sim().tracer().set_sample_interval(trace_sample);
  if (profiler) {
    bed.sim().profiler().set_enabled(true);
  }
  if (tracepoints) {
    bed.sim().tracepoints().ArmAll();
  }
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  if (monitor) {
    k.nic_control().EnableTopTalkers(16);
    k.StartMaintenance();
  }
  if (fastpath) {
    k.nic_control().EnableFlowCache(1024);
  }
  if (shard_queues != 0) {
    // Must precede the connects: sharding is one-shot and re-steers flows.
    EXPECT_TRUE(k.nic_control().EnableSharding(shard_queues).ok());
  }
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);

  auto s1 = Socket::Connect(&k, pid, peer, 1000, {});
  auto s2 = Socket::Connect(&k, pid, peer, 2000, {});
  workload::PoissonSender p1(&bed.sim(), &*s1, 300, 20 * kMicrosecond, seed);
  workload::PoissonSender p2(&bed.sim(), &*s2, 700, 35 * kMicrosecond,
                             seed ^ 0xabcdef);
  p1.Start(0, 5 * kMillisecond);
  p2.Start(0, 5 * kMillisecond);

  RunTrace trace;
  bed.SetEgressHook([&trace](const net::Packet& p) {
    trace.completions.push_back(p.meta().completed_at);
  });
  bed.sim().Run();
  trace.egress_frames = bed.egress_frames();
  trace.egress_bytes = bed.egress_bytes();
  trace.final_time = bed.sim().Now();
  trace.events = bed.sim().events_processed();
  if (profiler) {
    trace.folded_stacks = bed.sim().profiler().FoldedStacks();
    trace.prof_json = bed.sim().profiler().JsonReport();
  }
  if (tracepoints) {
    trace.journal_json = bed.sim().tracepoints().JournalJson();
  }
  return trace;
}

TEST(DeterminismTest, IdenticalSeedsIdenticalTraces) {
  const RunTrace a = RunWorld(42);
  const RunTrace b = RunWorld(42);
  EXPECT_EQ(a.egress_frames, b.egress_frames);
  EXPECT_EQ(a.egress_bytes, b.egress_bytes);
  EXPECT_EQ(a.final_time, b.final_time);
  EXPECT_EQ(a.events, b.events);
  ASSERT_EQ(a.completions.size(), b.completions.size());
  for (size_t i = 0; i < a.completions.size(); ++i) {
    ASSERT_EQ(a.completions[i], b.completions[i]) << "frame " << i;
  }
}

// Golden trace captured on the pre-pooling tree (fresh heap allocation for
// every packet and event, unbatched TX fetch). The pooled/batched hot path
// must reproduce the virtual-time behavior bit-for-bit: same frames, same
// bytes, same final clock, and the same completion timestamp sequence
// (FNV-1a-hashed here to keep the golden compact). events_processed is
// deliberately NOT pinned — descriptor batching legitimately elides
// intermediate fetch wake-ups without reordering any observable event.
uint64_t Fnv1aHash(const std::vector<Nanos>& completions) {
  uint64_t hash = 1469598103934665603ULL;  // FNV-1a 64 offset basis
  for (const Nanos c : completions) {
    const auto v = static_cast<uint64_t>(c);
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (i * 8)) & 0xff;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

void ExpectMatchesGoldenTrajectory(const RunTrace& t) {
  EXPECT_EQ(t.egress_frames, 413u);
  EXPECT_EQ(t.egress_bytes, 202446u);
  ASSERT_EQ(t.completions.size(), 413u);
  EXPECT_EQ(Fnv1aHash(t.completions), 8587471973237143124ULL);
}

void ExpectMatchesGolden(const RunTrace& t) {
  ExpectMatchesGoldenTrajectory(t);
  EXPECT_EQ(t.final_time, 5052014);
}

TEST(DeterminismTest, MatchesPrePoolingGoldenTrace) {
  ExpectMatchesGolden(RunWorld(42));
}

// Lifecycle tracing is pure observation: it schedules no events and draws
// no randomness, so the virtual-time trajectory with sampling enabled —
// at any interval — must still match the pre-telemetry golden bit-for-bit.
TEST(DeterminismTest, TracingOnMatchesGoldenTrace) {
  ExpectMatchesGolden(RunWorld(42, /*trace_sample=*/1));
  ExpectMatchesGolden(RunWorld(42, /*trace_sample=*/64));
}

// The continuous-monitoring stack — maintenance tick, time-series sampler,
// health watchdog, top-talkers table — observes but never touches packets:
// the trajectory (frames, bytes, completion sequence) must match the golden
// bit-for-bit with monitoring on. Only final_time is exempt: the maintenance
// timer itself legitimately extends the virtual clock past the last packet.
TEST(DeterminismTest, MonitoringOnMatchesGoldenTrajectory) {
  const RunTrace t = RunWorld(42, /*trace_sample=*/0, /*monitor=*/true);
  ExpectMatchesGoldenTrajectory(t);
}

// The flow fast path changes packet *latency* (hits bypass the per-stage
// walk) but must not change what comes out of the NIC: same frames, same
// bytes. Its trajectory is pinned separately because completion timestamps
// legitimately shift; this golden was captured once when the cache landed
// and any drift after that is a real fast-path bug (dropped, duplicated, or
// reordered frames, or nondeterministic eviction).
TEST(DeterminismTest, FastPathOnMatchesGoldenTrajectory) {
  const RunTrace t =
      RunWorld(42, /*trace_sample=*/0, /*monitor=*/false, /*fastpath=*/true);
  EXPECT_EQ(t.egress_frames, 413u);
  EXPECT_EQ(t.egress_bytes, 202446u);
  ASSERT_EQ(t.completions.size(), 413u);
  EXPECT_EQ(Fnv1aHash(t.completions), 12554163209316526794ULL);
  EXPECT_EQ(t.final_time, 5052014);
  // Rerunning must be bit-identical (fast-path hits and evictions are a
  // pure function of the packet sequence).
  const RunTrace again =
      RunWorld(42, /*trace_sample=*/0, /*monitor=*/false, /*fastpath=*/true);
  EXPECT_EQ(again.completions, t.completions);
}

// Batched event dispatch (StepBatch) only groups events that already share
// the ready horizon, so the dispatch *order* is untouched by construction —
// but batching also changes when callbacks observe the heap (undispatched
// siblings live in a buffer, not the heap) and when device loops decide to
// continue inline. This pins the whole trajectory, final clock included, at
// batch sizes 1 (the historical per-event loop), 8, and 64: any divergence
// means batching leaked into observable virtual-time behavior.
TEST(DeterminismTest, GoldenTraceIdenticalAtEveryDispatchBatchSize) {
  for (const uint32_t batch : {1u, 8u, 64u}) {
    SCOPED_TRACE("dispatch_batch=" + std::to_string(batch));
    ExpectMatchesGolden(RunWorld(42, /*trace_sample=*/0, /*monitor=*/false,
                                 /*fastpath=*/false, batch));
  }
}

// Same pinning for the fast-path trajectory: the TX burst memo and
// per-burst lookup hoisting must not shift a single completion timestamp.
TEST(DeterminismTest, FastPathGoldenIdenticalAtEveryDispatchBatchSize) {
  for (const uint32_t batch : {1u, 8u, 64u}) {
    SCOPED_TRACE("dispatch_batch=" + std::to_string(batch));
    const RunTrace t = RunWorld(42, /*trace_sample=*/0, /*monitor=*/false,
                                /*fastpath=*/true, batch);
    EXPECT_EQ(t.egress_frames, 413u);
    EXPECT_EQ(t.egress_bytes, 202446u);
    ASSERT_EQ(t.completions.size(), 413u);
    EXPECT_EQ(Fnv1aHash(t.completions), 12554163209316526794ULL);
    EXPECT_EQ(t.final_time, 5052014);
  }
}

// The stats tier must be invisible to virtual time: counters observe, they
// never schedule. Whichever level this binary was built at (CI builds both
// NORMAN_STATS_LEVEL=0 and =1), the golden trajectory must hold — that is
// the cross-tier equivalence check, pinned to one shared golden.
TEST(DeterminismTest, GoldenTraceHoldsAtThisStatsLevel) {
  static_assert(telemetry::kStatsLevel == 0 || telemetry::kStatsLevel == 1,
                "unknown stats tier");
  ExpectMatchesGolden(RunWorld(42));
}

// The profiler, like the tracer, is pure observation: no events, no RNG,
// no virtual-time cost. With attribution fully enabled the trajectory must
// still match the pre-telemetry golden bit-for-bit at every batch size —
// and the profiler's own exports must be byte-stable across reruns.
TEST(DeterminismTest, ProfilerOnMatchesGoldenTrace) {
  for (const uint32_t batch : {1u, 8u, 64u}) {
    SCOPED_TRACE("dispatch_batch=" + std::to_string(batch));
    ExpectMatchesGolden(RunWorld(42, /*trace_sample=*/0, /*monitor=*/false,
                                 /*fastpath=*/false, batch,
                                 /*profiler=*/true));
  }
}

TEST(DeterminismTest, ProfilerExportsAreByteStable) {
  const RunTrace a = RunWorld(42, 0, false, /*fastpath=*/true, 0,
                              /*profiler=*/true);
  const RunTrace b = RunWorld(42, 0, false, /*fastpath=*/true, 0,
                              /*profiler=*/true);
  EXPECT_FALSE(a.prof_json.empty());
  EXPECT_EQ(a.folded_stacks, b.folded_stacks);
  EXPECT_EQ(a.prof_json, b.prof_json);
}

// Armed tracepoints, like the tracer and the profiler, are pure
// observation: no events, no RNG, no virtual-time cost, no steady-state
// allocation. With every probe armed the trajectory must match the
// pre-telemetry golden bit-for-bit at batch sizes 1, 8 and 64 — and at
// whichever stats tier this binary was built (at NORMAN_STATS_LEVEL=0 the
// emits compile away entirely, so the golden holds trivially).
TEST(DeterminismTest, TracepointsArmedMatchesGoldenTrace) {
  for (const uint32_t batch : {1u, 8u, 64u}) {
    SCOPED_TRACE("dispatch_batch=" + std::to_string(batch));
    ExpectMatchesGolden(RunWorld(42, /*trace_sample=*/0, /*monitor=*/false,
                                 /*fastpath=*/false, batch,
                                 /*profiler=*/false, /*tracepoints=*/true));
  }
}

// Same pinning over the fast-path trajectory, where the flow-cache probes
// (install/evict/invalidate) actually fire.
TEST(DeterminismTest, TracepointsArmedFastPathGoldenHolds) {
  for (const uint32_t batch : {1u, 8u, 64u}) {
    SCOPED_TRACE("dispatch_batch=" + std::to_string(batch));
    const RunTrace t = RunWorld(42, /*trace_sample=*/0, /*monitor=*/false,
                                /*fastpath=*/true, batch,
                                /*profiler=*/false, /*tracepoints=*/true);
    EXPECT_EQ(t.egress_frames, 413u);
    EXPECT_EQ(t.egress_bytes, 202446u);
    ASSERT_EQ(t.completions.size(), 413u);
    EXPECT_EQ(Fnv1aHash(t.completions), 12554163209316526794ULL);
    EXPECT_EQ(t.final_time, 5052014);
  }
}

// The decoded journal itself must be byte-stable across reruns — the
// postmortem bundle's core section rests on this.
TEST(DeterminismTest, TracepointsJournalIsByteStable) {
  const RunTrace a = RunWorld(42, 0, /*monitor=*/true, /*fastpath=*/true, 0,
                              /*profiler=*/false, /*tracepoints=*/true);
  const RunTrace b = RunWorld(42, 0, /*monitor=*/true, /*fastpath=*/true, 0,
                              /*profiler=*/false, /*tracepoints=*/true);
  if (telemetry::kHotStatsEnabled) {
    EXPECT_GT(a.journal_json.size(), 2u);  // more than "[]"
  }
  EXPECT_EQ(a.journal_json, b.journal_json);
}

// Sharding at num_queues=1 exercises the whole lane machinery — ingress
// steering, the lane ring hop, the batched drain, lane-tagged continuations
// — but with one lane the interleave schedule degenerates to the historical
// (when, seq) order and every packet serializes through lane 0's resources
// exactly as it did through the shared ones. The pre-pooling golden must
// hold bit-for-bit: that is the proof the sharded code path costs nothing
// it didn't cost before.
TEST(DeterminismTest, ShardedSingleLaneMatchesGoldenTrace) {
  ExpectMatchesGolden(RunWorld(42, /*trace_sample=*/0, /*monitor=*/false,
                               /*fastpath=*/false, /*dispatch_batch=*/0,
                               /*profiler=*/false, /*tracepoints=*/false,
                               /*shard_queues=*/1));
}

// The multi-queue trajectory is pinned separately: RSS steering at wire
// ingress legitimately reorders which lane's resources serve each packet,
// so completion timestamps shift vs. the serial golden — once. Captured
// when sharding landed; any drift after that is a real sharding bug
// (nondeterministic steering, lane-interleave instability, or a lost or
// duplicated frame). Also pinned across dispatch batch sizes: the lane
// round-robin must be invariant to how many same-horizon events the
// simulator dispatches per step.
TEST(DeterminismTest, MulticoreInterleaveGolden) {
  for (const uint32_t batch : {1u, 8u, 64u}) {
    SCOPED_TRACE("dispatch_batch=" + std::to_string(batch));
    const RunTrace t = RunWorld(42, /*trace_sample=*/0, /*monitor=*/false,
                                /*fastpath=*/false, batch,
                                /*profiler=*/false, /*tracepoints=*/false,
                                /*shard_queues=*/4);
    EXPECT_EQ(t.egress_frames, 413u);
    EXPECT_EQ(t.egress_bytes, 202446u);
    ASSERT_EQ(t.completions.size(), 413u);
    EXPECT_EQ(Fnv1aHash(t.completions), 15723838227408439630ULL);
    EXPECT_EQ(t.final_time, 5052014);
  }
  // Rerunning must be bit-identical at any queue count.
  const RunTrace a = RunWorld(42, 0, false, false, 0, false, false, 4);
  const RunTrace b = RunWorld(42, 0, false, false, 0, false, false, 4);
  EXPECT_EQ(a.completions, b.completions);
  const RunTrace e8a = RunWorld(42, 0, false, false, 0, false, false, 8);
  const RunTrace e8b = RunWorld(42, 0, false, false, 0, false, false, 8);
  EXPECT_EQ(e8a.completions, e8b.completions);
}

TEST(DeterminismTest, DifferentSeedsDifferentTraces) {
  const RunTrace a = RunWorld(42);
  const RunTrace b = RunWorld(43);
  EXPECT_NE(a.completions, b.completions);
}

TEST(AssemblerRoundTripTest, DisassemblyReassemblesIdentically) {
  constexpr std::string_view kSource = R"(
      ldf r1, ip_proto
      jne r1, 17, out
      ldf r2, dst_port
      ldb r3, 40
      add r2, r3
      shl r2, 2
      jge r2, 4000, out
      ldf r4, owner_uid
      jeq r4, r2, out
      ret 1
  out:
      ret 0
  )";
  auto prog = overlay::Assemble(kSource);
  ASSERT_TRUE(prog.ok()) << prog.status();
  const std::string text = overlay::Disassemble(*prog);
  // The disassembly's "N:" prefixes act as labels; numeric jump targets
  // parse as absolute indices. Reassembling must reproduce the program.
  auto again = overlay::Assemble(text);
  ASSERT_TRUE(again.ok()) << again.status() << "\n" << text;
  ASSERT_EQ(again->size(), prog->size());
  for (size_t i = 0; i < prog->size(); ++i) {
    EXPECT_EQ((*again)[i], (*prog)[i]) << "instr " << i << "\n" << text;
  }
}

}  // namespace
}  // namespace norman
