// ReliableChannel tests over the two-host duplex network with fault
// injection: loss, reordering jitter, duplication via lost ACKs — the
// channel must deliver every message exactly once, in order.
#include "src/norman/reliable.h"

#include <gtest/gtest.h>

#include "src/norman/listener.h"
#include "src/workload/duplex.h"

namespace norman {
namespace {

struct Endpoints {
  Socket client;
  Socket server;
};

class ReliableTest : public ::testing::Test {
 protected:
  // Builds a duplex world with the given fault profile and a connected
  // client/server socket pair with RX notifications enabled.
  void BuildWorld(double loss, Nanos jitter, uint64_t seed = 0x5eed) {
    workload::DuplexOptions opts;
    opts.loss_probability = loss;
    opts.jitter_ns = jitter;
    opts.fault_seed = seed;
    bed_ = std::make_unique<workload::DuplexTestBed>(opts);
    bed_->a().kernel->processes().AddUser(1, "a");
    bed_->b().kernel->processes().AddUser(2, "b");
    const auto pid_a = *bed_->a().kernel->processes().Spawn(1, "client");
    const auto pid_b = *bed_->b().kernel->processes().Spawn(2, "server");

    kernel::ConnectOptions copts;
    copts.notify_rx = true;
    auto listener = Listener::Create(bed_->b().kernel.get(), pid_b, 4500,
                                     net::IpProto::kUdp, copts);
    ASSERT_TRUE(listener.ok()) << listener.status();
    listener_ = std::make_unique<Listener>(std::move(listener).value());
    auto client =
        Socket::Connect(bed_->a().kernel.get(), pid_a, bed_->ip_b(), 4500,
                        copts);
    ASSERT_TRUE(client.ok());
    // Fire one raw datagram to trigger the server-side accept, then drain
    // it before the channels start (it is not a channel frame).
    ASSERT_TRUE(client->Send(std::vector<uint8_t>{0xff, 0, 0, 0, 0}).ok());
    bed_->sim().Run();
    auto server = listener_->Accept();
    ASSERT_TRUE(server.ok()) << server.status();
    while (server->RecvFrame() != nullptr) {
    }
    endpoints_ = std::make_unique<Endpoints>(
        Endpoints{std::move(*client), std::move(*server)});
  }

  std::unique_ptr<workload::DuplexTestBed> bed_;
  std::unique_ptr<Listener> listener_;  // keeps the port bound for the test
  std::unique_ptr<Endpoints> endpoints_;
};

TEST_F(ReliableTest, LosslessInOrderDelivery) {
  BuildWorld(0.0, 0);
  ReliableChannel tx(&bed_->sim(), bed_->a().kernel.get(),
                     &endpoints_->client);
  ReliableChannel rx(&bed_->sim(), bed_->b().kernel.get(),
                     &endpoints_->server);
  std::vector<std::string> delivered;
  rx.SetMessageHandler([&](std::vector<uint8_t> m) {
    delivered.emplace_back(m.begin(), m.end());
  });
  ASSERT_TRUE(tx.Start().ok());
  ASSERT_TRUE(rx.Start().ok());

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tx.Send("msg " + std::to_string(i)).ok());
  }
  bed_->sim().RunUntil(200 * kMillisecond);

  ASSERT_EQ(delivered.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(delivered[i], "msg " + std::to_string(i));
  }
  EXPECT_EQ(tx.stats().retransmissions, 0u);
  EXPECT_EQ(rx.stats().duplicates_discarded, 0u);
  EXPECT_EQ(tx.unacked_segments(), 0u);
}

struct LossCase {
  double loss;
  uint64_t seed;
};

class ReliableLossTest : public ::testing::TestWithParam<LossCase> {};

TEST_P(ReliableLossTest, ExactlyOnceInOrderUnderLoss) {
  const auto param = GetParam();
  workload::DuplexOptions opts;
  opts.loss_probability = param.loss;
  opts.fault_seed = param.seed;
  workload::DuplexTestBed bed(opts);
  bed.a().kernel->processes().AddUser(1, "a");
  bed.b().kernel->processes().AddUser(2, "b");
  const auto pid_a = *bed.a().kernel->processes().Spawn(1, "client");
  const auto pid_b = *bed.b().kernel->processes().Spawn(2, "server");
  kernel::ConnectOptions copts;
  copts.notify_rx = true;
  auto listener = Listener::Create(bed.b().kernel.get(), pid_b, 4500,
                                   net::IpProto::kUdp, copts);
  ASSERT_TRUE(listener.ok()) << listener.status();
  auto client = Socket::Connect(bed.a().kernel.get(), pid_a, bed.ip_b(),
                                4500, copts);
  ASSERT_TRUE(client.ok());
  // Trigger accept; the trigger datagram itself may be lost, so retry.
  StatusOr<Socket> server = UnavailableError("pending");
  for (int attempt = 0; attempt < 50 && !server.ok(); ++attempt) {
    ASSERT_TRUE(client->Send(std::vector<uint8_t>{0xff, 0, 0, 0, 0}).ok());
    bed.sim().Run();
    server = listener->Accept();
  }
  ASSERT_TRUE(server.ok());
  while (server->RecvFrame() != nullptr) {
  }

  ReliableChannel tx(&bed.sim(), bed.a().kernel.get(), &*client);
  ReliableChannel rx(&bed.sim(), bed.b().kernel.get(), &*server);
  std::vector<int> delivered;
  rx.SetMessageHandler([&](std::vector<uint8_t> m) {
    delivered.push_back(std::stoi(std::string(m.begin(), m.end())));
  });
  ASSERT_TRUE(tx.Start().ok());
  ASSERT_TRUE(rx.Start().ok());

  constexpr int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_TRUE(tx.Send(std::to_string(i)).ok());
  }
  bed.sim().RunUntil(5000 * kMillisecond);

  ASSERT_EQ(delivered.size(), static_cast<size_t>(kMessages))
      << "loss=" << param.loss << " lost_frames=" << bed.frames_lost();
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(delivered[i], i) << "order violated at " << i;
  }
  EXPECT_FALSE(tx.failed());
  EXPECT_GT(tx.stats().retransmissions, 0u);
  EXPECT_GT(bed.frames_lost(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    LossRates, ReliableLossTest,
    ::testing::Values(LossCase{0.05, 1}, LossCase{0.10, 2},
                      LossCase{0.25, 3}, LossCase{0.10, 42}));

TEST_F(ReliableTest, ReorderingJitterHandled) {
  // Jitter larger than frame spacing reorders frames on the wire.
  BuildWorld(0.0, /*jitter=*/200 * kMicrosecond);
  ReliableChannel tx(&bed_->sim(), bed_->a().kernel.get(),
                     &endpoints_->client);
  ReliableChannel rx(&bed_->sim(), bed_->b().kernel.get(),
                     &endpoints_->server);
  std::vector<int> delivered;
  rx.SetMessageHandler([&](std::vector<uint8_t> m) {
    delivered.push_back(std::stoi(std::string(m.begin(), m.end())));
  });
  ASSERT_TRUE(tx.Start().ok());
  ASSERT_TRUE(rx.Start().ok());
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(tx.Send(std::to_string(i)).ok());
  }
  bed_->sim().RunUntil(2000 * kMillisecond);
  ASSERT_EQ(delivered.size(), 150u);
  for (int i = 0; i < 150; ++i) {
    ASSERT_EQ(delivered[i], i);
  }
  EXPECT_GT(rx.stats().out_of_order_buffered, 0u);
}

TEST_F(ReliableTest, WindowNeverExceeded) {
  BuildWorld(0.0, 0);
  ReliableOptions ropts;
  ropts.window = 8;
  ReliableChannel tx(&bed_->sim(), bed_->a().kernel.get(),
                     &endpoints_->client, ropts);
  ReliableChannel rx(&bed_->sim(), bed_->b().kernel.get(),
                     &endpoints_->server);
  rx.SetMessageHandler([](std::vector<uint8_t>) {});
  ASSERT_TRUE(tx.Start().ok());
  ASSERT_TRUE(rx.Start().ok());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tx.Send(std::to_string(i)).ok());
    EXPECT_LE(tx.unacked_segments(), 8u);
  }
  bed_->sim().RunUntil(500 * kMillisecond);
  EXPECT_EQ(rx.stats().messages_delivered, 100u);
  EXPECT_EQ(tx.unacked_segments(), 0u);
}

TEST_F(ReliableTest, BidirectionalChannels) {
  BuildWorld(0.10, 50 * kMicrosecond, /*seed=*/7);
  ReliableChannel a(&bed_->sim(), bed_->a().kernel.get(),
                    &endpoints_->client);
  ReliableChannel b(&bed_->sim(), bed_->b().kernel.get(),
                    &endpoints_->server);
  int a_got = 0, b_got = 0;
  a.SetMessageHandler([&](std::vector<uint8_t>) { ++a_got; });
  b.SetMessageHandler([&](std::vector<uint8_t>) { ++b_got; });
  ASSERT_TRUE(a.Start().ok());
  ASSERT_TRUE(b.Start().ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(a.Send("from a " + std::to_string(i)).ok());
    ASSERT_TRUE(b.Send("from b " + std::to_string(i)).ok());
  }
  bed_->sim().RunUntil(5000 * kMillisecond);
  EXPECT_EQ(a_got, 50);
  EXPECT_EQ(b_got, 50);
}

TEST_F(ReliableTest, TotalLossEventuallyFailsTheChannel) {
  BuildWorld(0.0, 0);                // connect over a clean link...
  bed_->set_loss_probability(1.0);   // ...then the link goes dark
  ReliableOptions ropts;
  ropts.max_retries = 5;
  ropts.initial_rto = 100 * kMicrosecond;
  ReliableChannel tx(&bed_->sim(), bed_->a().kernel.get(),
                     &endpoints_->client, ropts);
  Status failure = OkStatus();
  tx.SetFailureHandler([&](Status s) { failure = s; });
  ASSERT_TRUE(tx.Start().ok());
  ASSERT_TRUE(tx.Send("into the void").ok());
  bed_->sim().RunUntil(10000 * kMillisecond);
  EXPECT_TRUE(tx.failed());
  EXPECT_EQ(failure.code(), StatusCode::kUnavailable);
  EXPECT_EQ(tx.Send("more").code(), StatusCode::kUnavailable);
}

TEST_F(ReliableTest, DoubleStartRejected) {
  BuildWorld(0.0, 0);
  ReliableChannel tx(&bed_->sim(), bed_->a().kernel.get(),
                     &endpoints_->client);
  ASSERT_TRUE(tx.Start().ok());
  EXPECT_EQ(tx.Start().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace norman
