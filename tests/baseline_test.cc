// Tests for the architecture capability table, the E1 performance model,
// and the §2 scenario simulations.
#include <gtest/gtest.h>

#include "src/baseline/architecture.h"
#include "src/baseline/perf_model.h"
#include "src/baseline/scenarios.h"

namespace norman::baseline {
namespace {

TEST(CapabilitiesTest, OnlyOsIntegratedDesignsHaveBothViews) {
  for (const Architecture arch :
       {Architecture::kKernelStack, Architecture::kBypass,
        Architecture::kBypassAppInterposition,
        Architecture::kHypervisorSwitch, Architecture::kSidecarCore,
        Architecture::kKopi}) {
    const Capabilities c = CapabilitiesOf(arch);
    const bool both = c.global_view && c.process_view;
    const bool os_integrated = arch == Architecture::kKernelStack ||
                               arch == Architecture::kSidecarCore ||
                               arch == Architecture::kKopi;
    EXPECT_EQ(both, os_integrated) << ArchitectureName(arch);
  }
}

TEST(CapabilitiesTest, OnlyKopiHasEverything) {
  for (const Architecture arch :
       {Architecture::kKernelStack, Architecture::kBypass,
        Architecture::kBypassAppInterposition,
        Architecture::kHypervisorSwitch, Architecture::kSidecarCore,
        Architecture::kKopi}) {
    const Capabilities c = CapabilitiesOf(arch);
    const bool everything = c.global_view && c.process_view &&
                            c.can_enforce && c.can_block_io && c.line_rate;
    EXPECT_EQ(everything, arch == Architecture::kKopi)
        << ArchitectureName(arch);
  }
}

// --- E1 performance model ---

class PerfModelTest : public ::testing::Test {
 protected:
  sim::CostModel cost_;

  PerfResult Run(Architecture arch, int rules = 0, size_t bytes = 1024) {
    PerfConfig cfg;
    cfg.packets = 50'000;
    cfg.frame_bytes = bytes;
    cfg.filter_rules = rules;
    return RunPerfModel(arch, cost_, cfg);
  }
};

TEST_F(PerfModelTest, KopiMatchesBypassThroughputClosely) {
  const auto kopi = Run(Architecture::kKopi, /*rules=*/10);
  const auto bypass = Run(Architecture::kBypass);
  // The paper's hypothesis: KOPI retains the performance of bypass while
  // interposing. Allow 10% — the NIC pipeline adds latency, not throughput.
  EXPECT_GT(kopi.throughput_pps, bypass.throughput_pps * 0.90);
}

TEST_F(PerfModelTest, KernelStackIsMuchSlower) {
  const auto kernel = Run(Architecture::kKernelStack, 10);
  const auto kopi = Run(Architecture::kKopi, 10);
  EXPECT_GT(kopi.throughput_pps, kernel.throughput_pps * 2.0);
}

TEST_F(PerfModelTest, SidecarSlowerThanKopiButFasterThanKernel) {
  const auto sidecar = Run(Architecture::kSidecarCore, 10);
  const auto kernel = Run(Architecture::kKernelStack, 10);
  const auto kopi = Run(Architecture::kKopi, 10);
  EXPECT_GT(sidecar.throughput_pps, kernel.throughput_pps);
  EXPECT_GT(kopi.throughput_pps, sidecar.throughput_pps);
}

TEST_F(PerfModelTest, TransferCountsMatchPaper) {
  // §1: kernel bypass reduces movement "from two transfers ... to one".
  EXPECT_EQ(Run(Architecture::kKernelStack).transfers_per_packet, 2);
  EXPECT_EQ(Run(Architecture::kSidecarCore).transfers_per_packet, 2);
  EXPECT_EQ(Run(Architecture::kBypass).transfers_per_packet, 1);
  EXPECT_EQ(Run(Architecture::kKopi).transfers_per_packet, 1);
}

TEST_F(PerfModelTest, SidecarBurnsADedicatedCore) {
  const auto sidecar = Run(Architecture::kSidecarCore);
  const auto kopi = Run(Architecture::kKopi);
  EXPECT_GT(sidecar.extra_core_utilization, 0.5);
  EXPECT_EQ(kopi.extra_core_utilization, 0.0);
}

TEST_F(PerfModelTest, KopiLatencyBetweenBypassAndKernel) {
  // Unloaded latency (open loop well below capacity) — the meaningful
  // comparison; under saturation latency is just queue depth.
  auto run_unloaded = [this](Architecture arch) {
    PerfConfig cfg;
    cfg.packets = 10'000;
    cfg.frame_bytes = 1024;
    cfg.filter_rules = 10;
    cfg.interarrival = 10 * kMicrosecond;
    return RunPerfModel(arch, cost_, cfg);
  };
  const auto bypass = run_unloaded(Architecture::kBypass);
  const auto kopi = run_unloaded(Architecture::kKopi);
  const auto kernel = run_unloaded(Architecture::kKernelStack);
  EXPECT_GE(kopi.latency.p50(), bypass.latency.p50());
  EXPECT_LT(kopi.latency.p50(), kernel.latency.p50());
}

TEST_F(PerfModelTest, RuleCountBarelyAffectsKopi) {
  // Hardware matcher: 100 rules cost 100*6 overlay instrs at 2ns in a
  // pipelined engine — latency grows, throughput holds.
  const auto none = Run(Architecture::kKopi, 0);
  const auto many = Run(Architecture::kKopi, 60);
  EXPECT_GT(many.throughput_pps, none.throughput_pps * 0.95);
  // Kernel stack pays per rule in software on the app core.
  const auto k_none = Run(Architecture::kKernelStack, 0);
  const auto k_many = Run(Architecture::kKernelStack, 60);
  EXPECT_LT(k_many.throughput_pps, k_none.throughput_pps * 0.85);
}

TEST_F(PerfModelTest, LargeFramesApproachLineRate) {
  const auto kopi = Run(Architecture::kKopi, 0, /*bytes=*/1500);
  // 100G link: with 1500B frames the model should get close to line rate.
  EXPECT_GT(kopi.throughput_bps, 50e9);
  EXPECT_LE(kopi.throughput_bps,
            static_cast<double>(cost_.link_rate_bps) * 1.01);
}

TEST_F(PerfModelTest, OpenLoopRespectsInterarrival) {
  PerfConfig cfg;
  cfg.packets = 1000;
  cfg.frame_bytes = 256;
  cfg.interarrival = 10 * kMicrosecond;  // 100 kpps offered
  const auto r = RunPerfModel(Architecture::kKopi, cost_, cfg);
  EXPECT_NEAR(r.throughput_pps, 1e5, 1e3);
  EXPECT_LT(r.app_core_utilization, 0.1);
}

// --- §2 scenarios (E3) ---

struct ScenarioCase {
  Architecture arch;
  bool debugging;
  bool partitioning;
  bool scheduling;
  bool qos;
};

class ScenarioMatrixTest : public ::testing::TestWithParam<ScenarioCase> {};

TEST_P(ScenarioMatrixTest, MatchesPaperTable) {
  const auto& c = GetParam();
  EXPECT_EQ(RunDebuggingScenario(c.arch).success, c.debugging)
      << RunDebuggingScenario(c.arch).detail;
  EXPECT_EQ(RunPortPartitioningScenario(c.arch).success, c.partitioning)
      << RunPortPartitioningScenario(c.arch).detail;
  EXPECT_EQ(RunProcessSchedulingScenario(c.arch).success, c.scheduling);
  EXPECT_EQ(RunQosScenario(c.arch).success, c.qos)
      << RunQosScenario(c.arch).detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllArchitectures, ScenarioMatrixTest,
    ::testing::Values(
        // kernel stack: everything works (just slowly).
        ScenarioCase{Architecture::kKernelStack, true, true, true, true},
        // raw bypass: nothing works.
        ScenarioCase{Architecture::kBypass, false, false, false, false},
        // app-level: evaded by the malicious/buggy app in every scenario
        // that matters; no global view for QoS.
        ScenarioCase{Architecture::kBypassAppInterposition, false, false,
                     false, false},
        // hypervisor/switch: sees packets, knows no processes.
        ScenarioCase{Architecture::kHypervisorSwitch, false, false, false,
                     false},
        // sidecar OS dataplane: capable (the objection is performance).
        ScenarioCase{Architecture::kSidecarCore, true, true, true, true},
        // KOPI: capable.
        ScenarioCase{Architecture::kKopi, true, true, true, true}));

TEST(ScenarioDetailTest, HypervisorSeesFloodButCannotAttribute) {
  const auto out = RunDebuggingScenario(Architecture::kHypervisorSwitch);
  EXPECT_FALSE(out.success);
  EXPECT_NE(out.detail.find("no process identity"), std::string::npos);
}

TEST(ScenarioDetailTest, BypassSeesNothing) {
  const auto out = RunDebuggingScenario(Architecture::kBypass);
  EXPECT_NE(out.detail.find("invisible"), std::string::npos);
}

TEST(ScenarioDetailTest, KopiQosReportsMeasuredRatio) {
  const auto out = RunQosScenario(Architecture::kKopi);
  EXPECT_TRUE(out.success);
  EXPECT_NE(out.detail.find("8:1"), std::string::npos);
}

}  // namespace
}  // namespace norman::baseline
