// PacedScheduler unit tests plus full-system per-connection rate limiting
// through the kernel API.
#include "src/dataplane/rate_limiter.h"

#include <gtest/gtest.h>

#include "src/norman/socket.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"
#include "tests/test_util.h"
#include "src/net/packet_pool.h"

namespace norman::dataplane {
namespace {

using net::Direction;
using overlay::ConnMetadata;

net::PacketPtr ConnPacket(net::ConnectionId conn, size_t bytes,
                          overlay::PacketContext* ctx) {
  ctx->conn = ConnMetadata{conn, 1000, 100, 1, 0};
  return net::MakePacket(std::vector<uint8_t>(bytes, 0x77));
}

TEST(PacedSchedulerTest, UnlimitedConnectionsPassStraightThrough) {
  PacedScheduler sched;
  overlay::PacketContext ctx;
  ASSERT_TRUE(sched.Enqueue(ConnPacket(1, 1000, &ctx), ctx));
  EXPECT_NE(sched.Dequeue(0), nullptr);
  EXPECT_EQ(sched.backlog_packets(), 0u);
}

TEST(PacedSchedulerTest, LimitedConnectionIsPaced) {
  PacedScheduler sched;
  // 8 Mbit/s = 1 byte/us, burst 1000B.
  sched.SetRate(5, 8'000'000, 1000);
  overlay::PacketContext ctx;
  ASSERT_TRUE(sched.Enqueue(ConnPacket(5, 1000, &ctx), ctx));
  ASSERT_TRUE(sched.Enqueue(ConnPacket(5, 1000, &ctx), ctx));
  EXPECT_NE(sched.Dequeue(0), nullptr);   // burst covers the first
  EXPECT_EQ(sched.Dequeue(0), nullptr);   // second must wait ~1ms
  const Nanos eligible = sched.NextEligibleTime(0);
  EXPECT_GT(eligible, 900 * kMicrosecond);
  EXPECT_LT(eligible, 1100 * kMicrosecond);
  EXPECT_NE(sched.Dequeue(eligible + 1), nullptr);
}

TEST(PacedSchedulerTest, MixedTrafficOnlyLimitsConfiguredConn) {
  PacedScheduler sched;
  sched.SetRate(5, 8'000'000, 100);  // tiny burst: conn 5 throttled hard
  overlay::PacketContext ctx;
  ASSERT_TRUE(sched.Enqueue(ConnPacket(5, 1000, &ctx), ctx));
  ASSERT_TRUE(sched.Enqueue(ConnPacket(6, 1000, &ctx), ctx));
  // Conn 6 drains immediately; conn 5's packet stays queued.
  EXPECT_NE(sched.Dequeue(0), nullptr);
  EXPECT_EQ(sched.Dequeue(0), nullptr);
  EXPECT_EQ(sched.backlog_packets(), 1u);
}

TEST(PacedSchedulerTest, ClearRateReleasesBacklog) {
  PacedScheduler sched;
  sched.SetRate(5, 1'000, 1);  // ~never conformant
  overlay::PacketContext ctx;
  ASSERT_TRUE(sched.Enqueue(ConnPacket(5, 1000, &ctx), ctx));
  EXPECT_EQ(sched.Dequeue(0), nullptr);
  sched.ClearRate(5);
  EXPECT_FALSE(sched.HasRate(5));
  EXPECT_NE(sched.Dequeue(0), nullptr);
}

TEST(PacedSchedulerTest, PerConnCapacityDrops) {
  PacedScheduler sched(std::make_unique<nic::FifoScheduler>(),
                       /*per_conn_capacity=*/2);
  sched.SetRate(5, 1'000, 1);
  overlay::PacketContext ctx;
  EXPECT_TRUE(sched.Enqueue(ConnPacket(5, 100, &ctx), ctx));
  EXPECT_TRUE(sched.Enqueue(ConnPacket(5, 100, &ctx), ctx));
  EXPECT_FALSE(sched.Enqueue(ConnPacket(5, 100, &ctx), ctx));
  EXPECT_EQ(sched.paced_drops(), 1u);
}

TEST(PacedSchedulerTest, AchievedRateTracksConfig) {
  PacedScheduler sched;
  const BitsPerSecond rate = 80'000'000;  // 10 MB/s
  sched.SetRate(5, rate, 2000);
  overlay::PacketContext ctx;
  uint64_t queued = 0;
  for (int i = 0; i < 300; ++i) {
    auto p = ConnPacket(5, 1000, &ctx);
    queued += p->size();
    ASSERT_TRUE(sched.Enqueue(std::move(p), ctx));
  }
  Nanos now = 0;
  uint64_t drained = 0;
  while (drained < queued) {
    if (auto p = sched.Dequeue(now)) {
      drained += p->size();
      continue;
    }
    const Nanos next = sched.NextEligibleTime(now);
    ASSERT_GT(next, now);
    now = next;
  }
  EXPECT_NEAR(AchievedBps(drained, now) / static_cast<double>(rate), 1.0,
              0.05);
}

// --- Full system through the kernel ---

TEST(RateLimitSystemTest, KernelApiShapesOneConnection) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "bulk");
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto fast = Socket::Connect(&k, pid, peer, 1111, {});
  auto slow = Socket::Connect(&k, pid, peer, 2222, {});
  ASSERT_TRUE(fast.ok() && slow.ok());

  // Root caps the second connection at 100 Mbit/s.
  ASSERT_TRUE(
      k.SetConnRateLimit(kernel::kRootUid, slow->conn_id(), 100'000'000,
                         4000)
          .ok());
  // Non-root cannot.
  EXPECT_EQ(k.SetConnRateLimit(1, fast->conn_id(), 1, 1).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(
      k.SetConnRateLimit(kernel::kRootUid, 999, 1, 1).code(),
      StatusCode::kNotFound);

  constexpr Nanos kRunFor = 10 * kMillisecond;
  workload::BulkSender s1(&bed.sim(), &*fast, 1400, 5 * kMicrosecond);
  workload::BulkSender s2(&bed.sim(), &*slow, 1400, 5 * kMicrosecond);
  s1.Start(0, kRunFor);
  s2.Start(0, kRunFor);

  uint64_t fast_bytes = 0, slow_bytes = 0;
  bed.SetEgressHook([&](const net::Packet& p) {
    auto parsed = net::ParseFrame(p.bytes());
    if (!parsed || !parsed->flow()) {
      return;
    }
    (parsed->flow()->dst_port == 1111 ? fast_bytes : slow_bytes) += p.size();
  });
  bed.DiscardEgress();
  bed.sim().RunUntil(kRunFor);

  const double slow_bps = AchievedBps(slow_bytes, kRunFor);
  const double fast_bps = AchievedBps(fast_bytes, kRunFor);
  EXPECT_LT(slow_bps, 120e6);  // capped near 100 Mbit/s
  EXPECT_GT(slow_bps, 60e6);
  EXPECT_GT(fast_bps, 10 * slow_bps);  // unthrottled peer runs free
}

TEST(RateLimitSystemTest, LimitsSurviveQdiscSwap) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "bulk");
  auto sock = Socket::Connect(&k, pid,
                              net::Ipv4Address::FromOctets(10, 0, 0, 2),
                              1111, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(k.SetConnRateLimit(kernel::kRootUid, sock->conn_id(),
                                 50'000'000, 3000)
                  .ok());
  // Swap the discipline; the limit must persist.
  ASSERT_TRUE(
      k.SetQdisc(kernel::kRootUid, std::make_unique<nic::FifoScheduler>())
          .ok());

  constexpr Nanos kRunFor = 10 * kMillisecond;
  workload::BulkSender sender(&bed.sim(), &*sock, 1400, 5 * kMicrosecond);
  sender.Start(0, kRunFor);
  bed.sim().RunUntil(kRunFor);
  const double bps = AchievedBps(bed.egress_bytes(), kRunFor);
  EXPECT_LT(bps, 65e6);
  EXPECT_GT(bps, 30e6);
}

}  // namespace
}  // namespace norman::dataplane
