// Chaos suite: the deterministic wire fault plane end to end.
//
// ReliableChannel runs over a DuplexTestBed whose wire is a seeded
// FaultInjector; each single fault mode and a combined chaos profile must
// still yield exactly-once, in-order delivery, with every injected fault
// itemized in FaultStats / fault.* metrics. Fixed seeds replay
// byte-identically. A link that stays dark past max_retries fails the
// channel with a clean Status (no hang), and Resync() recovers it once the
// link returns. NIC-side faults (SRAM pressure, notification stall) are
// driven through the control plane.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "src/norman/listener.h"
#include "src/norman/reliable.h"
#include "src/sim/fault.h"
#include "src/workload/duplex.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using workload::DuplexTestBed;

// FaultStats as a comparable tuple (field order matches the struct).
std::array<uint64_t, 8> Ledger(const sim::FaultStats& s) {
  return {s.transmitted, s.delivered,   s.lost,     s.duplicated,
          s.corrupted,   s.reordered,   s.jittered, s.dropped_link_down};
}

std::array<uint64_t, 10> Ledger(const ReliableStats& s) {
  return {s.messages_sent,       s.segments_transmitted,
          s.retransmissions,     s.acks_sent,
          s.duplicates_discarded, s.out_of_order_buffered,
          s.messages_delivered,  s.rto_expirations,
          s.rto_backoffs,        s.resyncs};
}

class FaultInjectionTest : public ::testing::Test {
 protected:
  // Connects client/server over a clean wire, then installs `profile`
  // symmetrically on both directions — faults never hit connection setup.
  void BuildWorld(const sim::FaultProfile& profile, uint64_t seed = 0x5eed) {
    workload::DuplexOptions opts;
    opts.fault_seed = seed;
    bed_ = std::make_unique<DuplexTestBed>(opts);
    bed_->a().kernel->processes().AddUser(1, "a");
    bed_->b().kernel->processes().AddUser(2, "b");
    const auto pid_a = *bed_->a().kernel->processes().Spawn(1, "client");
    const auto pid_b = *bed_->b().kernel->processes().Spawn(2, "server");

    kernel::ConnectOptions copts;
    copts.notify_rx = true;
    auto listener = Listener::Create(bed_->b().kernel.get(), pid_b, 4500,
                                     net::IpProto::kUdp, copts);
    ASSERT_TRUE(listener.ok()) << listener.status();
    listener_ = std::make_unique<Listener>(std::move(listener).value());
    auto client = Socket::Connect(bed_->a().kernel.get(), pid_a, bed_->ip_b(),
                                  4500, copts);
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE(client->Send(std::vector<uint8_t>{0xff, 0, 0, 0, 0}).ok());
    bed_->sim().Run();
    auto server = listener_->Accept();
    ASSERT_TRUE(server.ok()) << server.status();
    while (server->RecvFrame() != nullptr) {
    }
    client_ = std::make_unique<Socket>(std::move(*client));
    server_ = std::make_unique<Socket>(std::move(*server));

    bed_->fault().SetProfile(DuplexTestBed::kLinkAtoB, profile);
    bed_->fault().SetProfile(DuplexTestBed::kLinkBtoA, profile);
  }

  // Pushes `count` numbered messages through a fresh channel pair and
  // asserts exactly-once, in-order delivery against the transmit log.
  void RunExactlyOnce(int count, Nanos deadline = 10'000 * kMillisecond) {
    ReliableChannel tx(&bed_->sim(), bed_->a().kernel.get(), client_.get());
    ReliableChannel rx(&bed_->sim(), bed_->b().kernel.get(), server_.get());
    std::vector<int> delivered;
    rx.SetMessageHandler([&](std::vector<uint8_t> m) {
      delivered.push_back(std::stoi(std::string(m.begin(), m.end())));
    });
    ASSERT_TRUE(tx.Start().ok());
    ASSERT_TRUE(rx.Start().ok());
    for (int i = 0; i < count; ++i) {
      ASSERT_TRUE(tx.Send(std::to_string(i)).ok());
    }
    bed_->sim().RunUntil(deadline);

    ASSERT_EQ(delivered.size(), static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
      ASSERT_EQ(delivered[i], i) << "order violated at " << i;
    }
    // The transmit log accounts for every wire transmission: nothing
    // delivered that was not sent, nothing sent more often than logged.
    EXPECT_EQ(tx.stats().messages_sent, static_cast<uint64_t>(count));
    EXPECT_EQ(rx.stats().messages_delivered, static_cast<uint64_t>(count));
    EXPECT_EQ(tx.stats().segments_transmitted,
              tx.stats().messages_sent + tx.stats().retransmissions);
    EXPECT_FALSE(tx.failed());
    tx_stats_ = tx.stats();
    rx_stats_ = rx.stats();
  }

  uint64_t FaultCounter(const char* name) {
    return bed_->sim().metrics().GetCounter(name)->value();
  }

  std::unique_ptr<DuplexTestBed> bed_;
  std::unique_ptr<Listener> listener_;
  std::unique_ptr<Socket> client_;
  std::unique_ptr<Socket> server_;
  ReliableStats tx_stats_;
  ReliableStats rx_stats_;
};

TEST_F(FaultInjectionTest, LossOnly) {
  sim::FaultProfile p;
  p.loss = 0.10;
  BuildWorld(p);
  RunExactlyOnce(150);
  EXPECT_GT(bed_->frames_lost(), 0u);
  EXPECT_GT(tx_stats_.retransmissions, 0u);
  EXPECT_EQ(FaultCounter("fault.injected.loss"), bed_->frames_lost());
}

TEST_F(FaultInjectionTest, DuplicationOnly) {
  sim::FaultProfile p;
  p.duplication = 0.25;
  BuildWorld(p);
  RunExactlyOnce(150);
  const uint64_t dups = bed_->fault().stats(DuplexTestBed::kLinkAtoB).duplicated +
                        bed_->fault().stats(DuplexTestBed::kLinkBtoA).duplicated;
  EXPECT_GT(dups, 0u);
  EXPECT_EQ(FaultCounter("fault.injected.duplicate"), dups);
  // Duplicated DATA segments must be discarded, never re-delivered.
  EXPECT_GT(rx_stats_.duplicates_discarded, 0u);
}

TEST_F(FaultInjectionTest, CorruptionOnly) {
  sim::FaultProfile p;
  p.corruption = 0.15;
  BuildWorld(p);
  RunExactlyOnce(150);
  const uint64_t corrupted =
      bed_->fault().stats(DuplexTestBed::kLinkAtoB).corrupted +
      bed_->fault().stats(DuplexTestBed::kLinkBtoA).corrupted;
  EXPECT_GT(corrupted, 0u);
  EXPECT_EQ(FaultCounter("fault.injected.corrupt"), corrupted);
  // Graceful degradation: RX checksum verification catches damaged frames
  // and drops them under kCorrupt; ARQ repairs the gap. (Both hosts share
  // the simulator's registry, so one NIC's accessor reads the world total;
  // a flip that breaks parsing entirely is dropped as malformed/unmatched
  // instead, so <=.)
  const uint64_t corrupt_drops =
      bed_->a().nic->stats().rx_drops(DropReason::kCorrupt);
  EXPECT_GT(corrupt_drops, 0u);
  EXPECT_LE(corrupt_drops, corrupted);
  EXPECT_GT(tx_stats_.retransmissions, 0u);
}

TEST_F(FaultInjectionTest, ReorderOnly) {
  sim::FaultProfile p;
  p.reorder = 0.30;
  p.reorder_delay = 300 * kMicrosecond;  // > frame spacing: real reordering
  BuildWorld(p);
  RunExactlyOnce(150);
  const uint64_t reordered =
      bed_->fault().stats(DuplexTestBed::kLinkAtoB).reordered +
      bed_->fault().stats(DuplexTestBed::kLinkBtoA).reordered;
  EXPECT_GT(reordered, 0u);
  EXPECT_EQ(FaultCounter("fault.injected.reorder"), reordered);
  EXPECT_GT(rx_stats_.out_of_order_buffered, 0u);
}

TEST_F(FaultInjectionTest, JitterOnly) {
  sim::FaultProfile p;
  p.jitter = 250 * kMicrosecond;
  BuildWorld(p);
  RunExactlyOnce(150);
  const uint64_t jittered =
      bed_->fault().stats(DuplexTestBed::kLinkAtoB).jittered +
      bed_->fault().stats(DuplexTestBed::kLinkBtoA).jittered;
  EXPECT_GT(jittered, 0u);
  EXPECT_EQ(FaultCounter("fault.injected.jitter"), jittered);
}

// The headline chaos case: 5% loss + reordering + corruption at once.
TEST_F(FaultInjectionTest, CombinedChaosExactlyOnce) {
  sim::FaultProfile p;
  p.loss = 0.05;
  p.corruption = 0.05;
  p.reorder = 0.10;
  p.reorder_delay = 250 * kMicrosecond;
  BuildWorld(p, /*seed=*/99);
  RunExactlyOnce(200, /*deadline=*/20'000 * kMillisecond);
  // Every fault mode actually fired.
  EXPECT_GT(FaultCounter("fault.injected.loss"), 0u);
  EXPECT_GT(FaultCounter("fault.injected.corrupt"), 0u);
  EXPECT_GT(FaultCounter("fault.injected.reorder"), 0u);
  EXPECT_GT(tx_stats_.retransmissions, 0u);
  EXPECT_GT(tx_stats_.rto_expirations, 0u);
}

// One complete chaos run, reduced to its comparable statistics.
struct ChaosLedgers {
  std::array<uint64_t, 8> wire_a{};
  std::array<uint64_t, 10> arq_tx{};
  std::array<uint64_t, 10> arq_rx{};
  size_t delivered = 0;
};

ChaosLedgers ChaosRun(uint64_t seed) {
  ChaosLedgers out;
  workload::DuplexOptions opts;
  opts.fault_seed = seed;
  DuplexTestBed bed(opts);
  bed.a().kernel->processes().AddUser(1, "a");
  bed.b().kernel->processes().AddUser(2, "b");
  const auto pid_a = *bed.a().kernel->processes().Spawn(1, "client");
  const auto pid_b = *bed.b().kernel->processes().Spawn(2, "server");
  kernel::ConnectOptions copts;
  copts.notify_rx = true;
  auto listener = Listener::Create(bed.b().kernel.get(), pid_b, 4500,
                                   net::IpProto::kUdp, copts);
  auto client = Socket::Connect(bed.a().kernel.get(), pid_a, bed.ip_b(),
                                4500, copts);
  EXPECT_TRUE(listener.ok() && client.ok());
  if (!listener.ok() || !client.ok()) {
    return out;
  }
  EXPECT_TRUE(client->Send(std::vector<uint8_t>{0xff, 0, 0, 0, 0}).ok());
  bed.sim().Run();
  auto server = listener->Accept();
  EXPECT_TRUE(server.ok());
  if (!server.ok()) {
    return out;
  }
  while (server->RecvFrame() != nullptr) {
  }

  sim::FaultProfile p;
  p.loss = 0.05;
  p.corruption = 0.05;
  p.reorder = 0.10;
  p.reorder_delay = 250 * kMicrosecond;
  bed.fault().SetProfile(DuplexTestBed::kLinkAtoB, p);
  bed.fault().SetProfile(DuplexTestBed::kLinkBtoA, p);

  ReliableChannel tx(&bed.sim(), bed.a().kernel.get(), &*client);
  ReliableChannel rx(&bed.sim(), bed.b().kernel.get(), &*server);
  rx.SetMessageHandler([&](std::vector<uint8_t>) { ++out.delivered; });
  EXPECT_TRUE(tx.Start().ok());
  EXPECT_TRUE(rx.Start().ok());
  for (int i = 0; i < 120; ++i) {
    EXPECT_TRUE(tx.Send(std::to_string(i)).ok());
  }
  bed.sim().RunUntil(10'000 * kMillisecond);

  out.wire_a = Ledger(bed.fault().stats(DuplexTestBed::kLinkAtoB));
  out.arq_tx = Ledger(tx.stats());
  out.arq_rx = Ledger(rx.stats());
  return out;
}

// Fixed seed => byte-identical fault and channel statistics across runs.
TEST(FaultDeterminismTest, SameSeedSameStats) {
  for (const uint64_t seed : {7ull, 1234ull}) {
    const ChaosLedgers first = ChaosRun(seed);
    const ChaosLedgers second = ChaosRun(seed);
    EXPECT_EQ(first.delivered, 120u) << "seed " << seed;
    EXPECT_EQ(first.wire_a, second.wire_a) << "seed " << seed;
    EXPECT_EQ(first.arq_tx, second.arq_tx) << "seed " << seed;
    EXPECT_EQ(first.arq_rx, second.arq_rx) << "seed " << seed;
  }
}

// Different seeds draw different fault sequences (the chaos dice are real).
TEST(FaultDeterminismTest, DistinctSeedsDiverge) {
  EXPECT_NE(ChaosRun(7).wire_a, ChaosRun(1234).wire_a);
}

// A link that stays dark past max_retries fails the channel with a clean
// Status (no hang, no exception); Resync() recovers once the link is back,
// and nothing is lost or duplicated across the outage.
TEST_F(FaultInjectionTest, LinkDownFailsCleanlyThenResyncs) {
  BuildWorld(sim::FaultProfile{});  // clean wire
  ReliableOptions ropts;
  ropts.max_retries = 4;
  ropts.initial_rto = 100 * kMicrosecond;
  ReliableChannel tx(&bed_->sim(), bed_->a().kernel.get(), client_.get(),
                     ropts);
  ReliableChannel rx(&bed_->sim(), bed_->b().kernel.get(), server_.get());
  std::vector<std::string> delivered;
  rx.SetMessageHandler([&](std::vector<uint8_t> m) {
    delivered.emplace_back(m.begin(), m.end());
  });
  Status failure = OkStatus();
  tx.SetFailureHandler([&](Status s) { failure = s; });
  ASSERT_TRUE(tx.Start().ok());
  ASSERT_TRUE(rx.Start().ok());

  bed_->fault().SetLinkDown(DuplexTestBed::kLinkAtoB, true);
  bed_->fault().SetLinkDown(DuplexTestBed::kLinkBtoA, true);
  ASSERT_TRUE(tx.Send("across the outage").ok());
  bed_->sim().RunUntil(5000 * kMillisecond);

  EXPECT_TRUE(tx.failed());
  EXPECT_EQ(failure.code(), StatusCode::kUnavailable);
  EXPECT_EQ(tx.last_error().code(), StatusCode::kUnavailable);
  // Send after failure surfaces the root cause, not a generic error.
  EXPECT_EQ(tx.Send("more").code(), StatusCode::kUnavailable);
  EXPECT_TRUE(delivered.empty());
  const uint64_t eaten =
      bed_->fault().stats(DuplexTestBed::kLinkAtoB).dropped_link_down;
  EXPECT_GE(eaten, static_cast<uint64_t>(ropts.max_retries));

  // The operator brings the link back and resynchronizes the channel.
  bed_->fault().SetLinkDown(DuplexTestBed::kLinkAtoB, false);
  bed_->fault().SetLinkDown(DuplexTestBed::kLinkBtoA, false);
  ASSERT_TRUE(tx.Resync().ok());
  ASSERT_TRUE(tx.Send("after the outage").ok());
  bed_->sim().RunUntil(bed_->sim().Now() + 5000 * kMillisecond);

  EXPECT_FALSE(tx.failed());
  EXPECT_EQ(tx.stats().resyncs, 1u);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], "across the outage");
  EXPECT_EQ(delivered[1], "after the outage");
  // Resync of an un-failed channel is a precondition error.
  EXPECT_EQ(tx.Resync().code(), StatusCode::kFailedPrecondition);
}

// A scheduled down window recovers by itself — no operator involved — and
// drives the fault.link.down gauge both ways.
TEST_F(FaultInjectionTest, DownWindowRecoversAutomatically) {
  BuildWorld(sim::FaultProfile{});
  bed_->fault().AddDownWindow(DuplexTestBed::kLinkAtoB, 1 * kMillisecond,
                              3 * kMillisecond);
  EXPECT_TRUE(bed_->fault().link_up(DuplexTestBed::kLinkAtoB, 0));
  EXPECT_FALSE(
      bed_->fault().link_up(DuplexTestBed::kLinkAtoB, 2 * kMillisecond));
  EXPECT_TRUE(
      bed_->fault().link_up(DuplexTestBed::kLinkAtoB, 3 * kMillisecond));

  ReliableChannel tx(&bed_->sim(), bed_->a().kernel.get(), client_.get());
  ReliableChannel rx(&bed_->sim(), bed_->b().kernel.get(), server_.get());
  int got = 0;
  rx.SetMessageHandler([&](std::vector<uint8_t>) { ++got; });
  ASSERT_TRUE(tx.Start().ok());
  ASSERT_TRUE(rx.Start().ok());
  // Send mid-window so the first transmissions hit the dark link and only
  // retransmission carries them across.
  bed_->sim().ScheduleAt(2 * kMillisecond, [&] {
    for (int i = 0; i < 20; ++i) {
      EXPECT_TRUE(tx.Send("m" + std::to_string(i)).ok());
    }
  });
  bed_->sim().RunUntil(10'000 * kMillisecond);
  EXPECT_EQ(got, 20);  // retransmission rides out the window
  EXPECT_FALSE(tx.failed());
  EXPECT_GT(bed_->fault()
                .stats(DuplexTestBed::kLinkAtoB)
                .dropped_link_down,
            0u);
}

// ---- NIC-side faults (control-plane driven) --------------------------------

TEST(NicFaultTest, SramPressureForcesFallbackUntilReleased) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  auto& cp = k.nic_control();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  constexpr auto kPeer = net::Ipv4Address::FromOctets(10, 0, 0, 2);

  auto before = Socket::Connect(&k, pid, kPeer, 1000, {});
  ASSERT_TRUE(before.ok());
  EXPECT_FALSE(before->software_fallback());

  // Hold every remaining SRAM byte hostage: flow installs now see the same
  // transient ResourceExhausted a real SRAM squeeze would produce.
  const uint64_t hostage = cp.sram().available();
  ASSERT_TRUE(cp.InjectSramPressure(hostage).ok());
  EXPECT_EQ(cp.sram_pressure_bytes(), hostage);

  kernel::ConnectOptions fallback_ok;
  fallback_ok.allow_software_fallback = true;
  auto squeezed = Socket::Connect(&k, pid, kPeer, 1001, fallback_ok);
  ASSERT_TRUE(squeezed.ok());
  EXPECT_TRUE(squeezed->software_fallback());
  // Without the opt-in, the squeeze is a clean ResourceExhausted.
  EXPECT_EQ(Socket::Connect(&k, pid, kPeer, 1003, {}).status().code(),
            StatusCode::kResourceExhausted);

  cp.ReleaseSramPressure();
  EXPECT_EQ(cp.sram_pressure_bytes(), 0u);
  auto after = Socket::Connect(&k, pid, kPeer, 1002, {});
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->software_fallback());
}

TEST(NicFaultTest, NotificationStallDefersWakeupsThenFlushes) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  auto& cp = k.nic_control();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "srv");

  kernel::ConnectOptions copts;
  copts.notify_rx = true;
  auto listener =
      Listener::Create(&k, pid, 8080, net::IpProto::kUdp, copts);
  ASSERT_TRUE(listener.ok());
  bed.InjectUdpFromPeer(5555, 8080, 8, 100);
  bed.sim().Run();
  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  while (conn->RecvFrame() != nullptr) {
  }

  int woke = 0;
  ASSERT_TRUE(conn->RecvBlocking([&](std::vector<uint8_t>) { ++woke; }).ok());

  cp.StallNotifications(true);
  EXPECT_TRUE(cp.notifications_stalled());
  bed.InjectUdpFromPeer(5555, 8080, 16, bed.sim().Now() + 1000);
  bed.sim().Run();
  // The frame reached the ring, but the completion sits in the holding pen.
  EXPECT_EQ(woke, 0);
  EXPECT_EQ(bed.sim().metrics().GetCounter("fault.nic.notify_deferred")
                ->value(),
            1u);

  cp.StallNotifications(false);  // flush the pen in arrival order
  bed.sim().Run();
  EXPECT_FALSE(cp.notifications_stalled());
  EXPECT_EQ(woke, 1);
}

// TestBed's synthetic-peer wire runs through the same fault plane.
TEST(TestBedFaultTest, CorruptedIngressDroppedByChecksumVerification) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "srv");
  auto listener = Listener::Create(&k, pid, 8080);
  ASSERT_TRUE(listener.ok());

  sim::FaultProfile p;
  p.corruption = 1.0;  // every ingress frame damaged
  bed.fault().SetProfile(workload::TestBed::kNetworkToHostLink, p);
  bed.InjectUdpFromPeer(5555, 8080, 32, 100);
  bed.sim().Run();

  EXPECT_EQ(bed.nic().stats().rx_drops(DropReason::kCorrupt), 1u);
  EXPECT_EQ(bed.sim().metrics().GetCounter("fault.injected.corrupt")->value(),
            1u);
  // The damaged trigger frame never became a connection.
  EXPECT_EQ(listener->Accept().status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(k.ListConnections().empty());
}

}  // namespace
}  // namespace norman
