#include "src/sim/resource.h"

#include <gtest/gtest.h>

#include "src/sim/cost_model.h"

namespace norman::sim {
namespace {

TEST(ResourceTest, IdleResourceServesImmediately) {
  Resource r("core0");
  EXPECT_EQ(r.Serve(/*arrival=*/100, /*service=*/50), 150);
  EXPECT_EQ(r.busy_ns(), 50);
  EXPECT_EQ(r.items_served(), 1u);
}

TEST(ResourceTest, BackToBackWorkQueues) {
  Resource r("core0");
  EXPECT_EQ(r.Serve(0, 100), 100);
  // Arrives while busy: waits.
  EXPECT_EQ(r.Serve(10, 100), 200);
  // Arrives after idle period: starts at arrival.
  EXPECT_EQ(r.Serve(500, 100), 600);
  EXPECT_EQ(r.busy_ns(), 300);
}

TEST(ResourceTest, UtilizationOverHorizon) {
  Resource r("core0");
  r.Serve(0, 250);
  r.Serve(250, 250);
  EXPECT_DOUBLE_EQ(r.Utilization(1000), 0.5);
  EXPECT_DOUBLE_EQ(r.Utilization(500), 1.0);
  EXPECT_DOUBLE_EQ(r.Utilization(0), 0.0);
}

TEST(ResourceTest, UtilizationOverWindow) {
  Resource r("core0");
  r.Serve(0, 250);
  r.Serve(250, 250);
  // Measurement window [600, 1100): all 500ns of busy time landed before
  // the window opened, but busy_ns is cumulative — the window denominator
  // just rescales it. The cap keeps the ratio at 1.0 when accumulated busy
  // time exceeds the window span.
  EXPECT_DOUBLE_EQ(r.Utilization(1100, /*window_start=*/600), 1.0);
  EXPECT_DOUBLE_EQ(r.Utilization(1500, 500), 0.5);
  // Degenerate (empty or inverted) windows report 0 rather than dividing
  // by zero.
  EXPECT_DOUBLE_EQ(r.Utilization(600, 600), 0.0);
  EXPECT_DOUBLE_EQ(r.Utilization(500, 600), 0.0);
  // Default window_start = 0 preserves the original signature.
  EXPECT_DOUBLE_EQ(r.Utilization(1000), 0.5);
}

TEST(ResourceTest, AddBusyAccountsPolling) {
  Resource r("core0");
  r.AddBusy(1000);
  EXPECT_DOUBLE_EQ(r.Utilization(1000), 1.0);
  EXPECT_EQ(r.items_served(), 0u);
}

TEST(ResourceTest, ResetClears) {
  Resource r("core0");
  r.Serve(0, 10);
  r.Reset();
  EXPECT_EQ(r.busy_ns(), 0);
  EXPECT_EQ(r.next_free(), 0);
  EXPECT_EQ(r.items_served(), 0u);
}

TEST(CostModelTest, CopyCostScalesWithBytes) {
  CostModel cm;
  EXPECT_EQ(cm.CopyCost(0), 0);
  EXPECT_GT(cm.CopyCost(1500), cm.CopyCost(64));
  EXPECT_EQ(cm.CopyCost(16000), static_cast<Nanos>(16000 * cm.copy_ns_per_byte));
}

TEST(CostModelTest, DdioMissCostsMoreThanHit) {
  CostModel cm;
  EXPECT_GT(cm.DmaCost(1500, /*ddio_hit=*/false),
            cm.DmaCost(1500, /*ddio_hit=*/true));
  // Both include the fixed setup cost.
  EXPECT_GE(cm.DmaCost(0, true), cm.dma_setup_ns);
}

TEST(CostModelTest, WireCostMatchesLinkRate) {
  CostModel cm;
  cm.link_rate_bps = 100 * kGbps;
  // 1500B at 100Gbps = 120ns.
  EXPECT_EQ(cm.WireCost(1500), 120);
  // 64B at 100Gbps = 5.12ns -> rounds up to 6.
  EXPECT_EQ(cm.WireCost(64), 6);
}

TEST(CostModelTest, PipelineOccupancyPositive) {
  CostModel cm;
  EXPECT_GT(cm.NicPipelineOccupancy(), 0);
  // 150 Mpps -> ~6.7ns, stored as integer ceil-ish.
  EXPECT_LE(cm.NicPipelineOccupancy(), 8);
}

TEST(UnitsTest, TransmissionDelayRoundsUp) {
  EXPECT_EQ(TransmissionDelay(1, 8 * 1'000'000'000ULL), 1);  // 1B at 8Gbps
  EXPECT_EQ(TransmissionDelay(0, kGbps), 0);
  EXPECT_EQ(TransmissionDelay(100, 0), 0);  // zero rate guarded
}

TEST(UnitsTest, AchievedBps) {
  EXPECT_DOUBLE_EQ(AchievedBps(1250, 100), 1e11);  // 1250B in 100ns = 100Gbps
  EXPECT_DOUBLE_EQ(AchievedBps(100, 0), 0.0);
}

}  // namespace
}  // namespace norman::sim
