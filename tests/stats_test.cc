#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace norman {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(LatencyHistogramTest, EmptyPercentilesAreZero) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.p50(), 0);
  EXPECT_EQ(h.p99(), 0);
}

TEST(LatencyHistogramTest, SingleValue) {
  LatencyHistogram h;
  h.Add(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 1234);
  EXPECT_EQ(h.max(), 1234);
  // Bucketed value is within the bucket's relative error (1/16).
  EXPECT_NEAR(static_cast<double>(h.p50()), 1234.0, 1234.0 / 16 + 1);
}

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  LatencyHistogram h;
  for (int i = 0; i < 32; ++i) {
    h.Add(i);
  }
  EXPECT_EQ(h.min(), 0);
  EXPECT_EQ(h.max(), 31);
  EXPECT_EQ(h.Percentile(1.0), 31);
}

TEST(LatencyHistogramTest, PercentileOrderingInvariant) {
  Rng rng(7);
  LatencyHistogram h;
  for (int i = 0; i < 10000; ++i) {
    h.Add(static_cast<int64_t>(rng.NextBounded(1'000'000)));
  }
  EXPECT_LE(h.p50(), h.p90());
  EXPECT_LE(h.p90(), h.p99());
  EXPECT_LE(h.p99(), h.p999());
  EXPECT_LE(h.p999(), h.max());
  EXPECT_GE(h.p50(), h.min());
}

TEST(LatencyHistogramTest, UniformPercentilesAreClose) {
  Rng rng(11);
  LatencyHistogram h;
  for (int i = 0; i < 100000; ++i) {
    h.Add(static_cast<int64_t>(rng.NextBounded(1'000'000)));
  }
  // p50 of U[0,1e6) should land near 5e5 within bucket resolution + noise.
  EXPECT_NEAR(static_cast<double>(h.p50()), 5e5, 5e4);
  EXPECT_NEAR(static_cast<double>(h.p99()), 9.9e5, 7e4);
}

TEST(LatencyHistogramTest, MergeEqualsCombinedStream) {
  Rng rng(3);
  LatencyHistogram a, b, combined;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1 << 20));
    combined.Add(v);
    (i % 2 == 0 ? a : b).Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  EXPECT_EQ(a.p50(), combined.p50());
  EXPECT_EQ(a.p99(), combined.p99());
}

TEST(LatencyHistogramTest, MeanMatchesRunningStats) {
  Rng rng(5);
  LatencyHistogram h;
  RunningStats s;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.NextBounded(1'000'000));
    h.Add(v);
    s.Add(static_cast<double>(v));
  }
  EXPECT_NEAR(h.mean(), s.mean(), std::abs(s.mean()) * 1e-9);
}

TEST(LatencyHistogramTest, LargeValuesDoNotOverflow) {
  LatencyHistogram h;
  h.Add(int64_t{1} << 62);
  h.Add(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GE(h.Percentile(1.0), (int64_t{1} << 62) / 2);
}

TEST(FormatTest, Nanos) {
  EXPECT_EQ(FormatNanos(17), "17ns");
  EXPECT_EQ(FormatNanos(1500), "1.50us");
  EXPECT_EQ(FormatNanos(2'500'000), "2.50ms");
  EXPECT_EQ(FormatNanos(3'000'000'000LL), "3.00s");
}

TEST(FormatTest, Bps) {
  EXPECT_EQ(FormatBps(94.3e9), "94.30 Gbps");
  EXPECT_EQ(FormatBps(1.5e6), "1.50 Mbps");
  EXPECT_EQ(FormatBps(2e3), "2.00 Kbps");
  EXPECT_EQ(FormatBps(10), "10 bps");
}

// Percentile boundary contract (relied on by the metrics exporter):
// q <= 0 is the exact minimum, q >= 1 the exact maximum — not bucket
// upper bounds — and an empty histogram reports 0 everywhere.
TEST(LatencyHistogramTest, PercentileBoundaries) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.0), 0);
  EXPECT_EQ(h.Percentile(1.0), 0);
  h.Add(1000);
  h.Add(5000);
  h.Add(123456);
  EXPECT_EQ(h.Percentile(0.0), 1000);
  EXPECT_EQ(h.Percentile(-0.5), 1000);
  EXPECT_EQ(h.Percentile(1.0), 123456);
  EXPECT_EQ(h.Percentile(1.5), 123456);
  // Interior quantiles stay within [min, max].
  EXPECT_GE(h.Percentile(0.5), h.min());
  EXPECT_LE(h.Percentile(0.5), h.max());
}

TEST(PoolCountersTest, NameAndAggregateInit) {
  PoolCounters pc{"packet"};
  EXPECT_EQ(pc.name, "packet");
  EXPECT_EQ(pc.hits, 0u);
  pc.RecordAcquire(true);
  pc.RecordAcquire(false);
  EXPECT_EQ(pc.acquisitions(), 2u);
}

TEST(PoolCountersTest, MergeSumsCountsAndKeepsName) {
  PoolCounters a{"packet"};
  a.hits = 10;
  a.misses = 2;
  a.releases = 9;
  a.dropped = 1;
  a.outstanding = 3;
  a.high_water = 5;
  PoolCounters b{"event"};
  b.hits = 100;
  b.misses = 20;
  b.releases = 110;
  b.dropped = 4;
  b.outstanding = 6;
  b.high_water = 8;

  PoolCounters all{"all"};
  all.Merge(a);
  all.Merge(b);
  EXPECT_EQ(all.name, "all");
  EXPECT_EQ(all.hits, 110u);
  EXPECT_EQ(all.misses, 22u);
  EXPECT_EQ(all.releases, 119u);
  EXPECT_EQ(all.dropped, 5u);
  EXPECT_EQ(all.outstanding, 9u);
  // high_water sums: an upper bound on the combined peak.
  EXPECT_EQ(all.high_water, 13u);
  EXPECT_EQ(all.acquisitions(), 132u);
}

}  // namespace
}  // namespace norman
