// Dataplane profiler (src/common/profiler.h): conservation, owner
// attribution, export stability, and the registry-tracked BatchedCounter
// flush that keeps end-of-run reports exact.
//
// The conservation invariant is the profiler's contract: for every
// registered core, summed attributed ns + the explicit unaccounted bucket
// equals the resource's busy ns — at every dispatch batch size, at both
// stats tiers (CI builds NORMAN_STATS_LEVEL=0 and =1), and under chaos.
// At the hot tier the instrumented paths charge exactly what they serve,
// so unaccounted must be exactly zero; at level 0 the charges compile out
// and the whole busy time lands in unaccounted — same equation, no silent
// loss either way.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/profiler.h"
#include "src/norman/socket.h"
#include "src/sim/fault.h"
#include "src/tools/tools.h"
#include "src/workload/generators.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using telemetry::Profiler;

constexpr auto kPeerIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);

void ExpectConservation(const Profiler& prof) {
  const auto cores = prof.CoreReports();
  ASSERT_GE(cores.size(), 5u);  // nic.{dma,pipeline,stages,wire} + kernel
  for (const auto& c : cores) {
    EXPECT_EQ(c.attributed_ns + c.unaccounted_ns, c.busy_ns) << c.name;
    if (telemetry::kHotStatsEnabled) {
      EXPECT_EQ(c.unaccounted_ns, 0u) << c.name << ": busy time escaped "
                                      << "the instrumented charge points";
    } else {
      EXPECT_EQ(c.attributed_ns, 0u) << c.name;
    }
  }
}

TEST(ProfilerConservationTest, ForwardingAtEveryBatchSize) {
  for (const uint32_t batch : {1u, 8u, 64u}) {
    SCOPED_TRACE("dispatch_batch=" + std::to_string(batch));
    workload::TestBedOptions opts;
    opts.echo = true;
    workload::TestBed bed(opts);
    bed.sim().set_dispatch_batch(batch);
    bed.sim().profiler().set_enabled(true);
    auto& k = bed.kernel();
    k.processes().AddUser(1, "u");
    const auto pid = *k.processes().Spawn(1, "app");
    auto sock = Socket::Connect(&k, pid, kPeerIp, 7777, {});
    ASSERT_TRUE(sock.ok());
    const std::vector<uint8_t> payload(300, 0xcd);
    for (int i = 0; i < 33; ++i) {  // odd count: a partial final TX burst
      ASSERT_TRUE(sock->Send(payload).ok());
    }
    bed.sim().Run();
    ExpectConservation(bed.sim().profiler());
  }
}

TEST(ProfilerConservationTest, ChaosRunStaysExact) {
  for (const uint32_t batch : {1u, 64u}) {
    SCOPED_TRACE("dispatch_batch=" + std::to_string(batch));
    workload::TestBedOptions opts;
    opts.echo = true;
    workload::TestBed bed(opts);
    bed.sim().set_dispatch_batch(batch);
    bed.sim().profiler().set_enabled(true);
    auto& k = bed.kernel();
    k.processes().AddUser(1, "u");
    const auto pid = *k.processes().Spawn(1, "app");
    auto sock = Socket::Connect(&k, pid, kPeerIp, 7777, {});
    ASSERT_TRUE(sock.ok());
    // Echo replies cross a corrupting wire that also goes dark mid-run:
    // damaged frames die at the RX checksum check, parked frames die on
    // the down link — all after their pipeline time was charged.
    sim::FaultProfile profile;
    profile.corruption = 0.25;
    bed.fault().SetProfile(workload::TestBed::kNetworkToHostLink, profile);
    bed.fault().AddDownWindow(workload::TestBed::kNetworkToHostLink,
                              50 * kMicrosecond, 150 * kMicrosecond);
    const std::vector<uint8_t> payload(600, 0xee);
    uint8_t scratch[2048];
    for (int round = 0; round < 4; ++round) {
      for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(sock->Send(payload).ok());
      }
      bed.sim().Run();
      while (sock->RecvInto(scratch).ok()) {
      }
    }
    ExpectConservation(bed.sim().profiler());
  }
}

TEST(ProfilerConservationTest, FlowCacheHitDominatedRun) {
  for (const uint32_t batch : {1u, 8u, 64u}) {
    SCOPED_TRACE("dispatch_batch=" + std::to_string(batch));
    workload::TestBedOptions opts;
    opts.echo = true;
    workload::TestBed bed(opts);
    bed.sim().set_dispatch_batch(batch);
    bed.sim().profiler().set_enabled(true);
    auto& k = bed.kernel();
    k.nic_control().EnableFlowCache(1024);
    k.processes().AddUser(1, "u");
    const auto pid = *k.processes().Spawn(1, "app");
    auto sock = Socket::Connect(&k, pid, kPeerIp, 7777, {});
    ASSERT_TRUE(sock.ok());
    const std::vector<uint8_t> payload(200, 0x5a);
    for (int i = 0; i < 64; ++i) {  // one flow: hit replay dominates
      ASSERT_TRUE(sock->Send(payload).ok());
    }
    bed.sim().Run();
    EXPECT_GT(k.nic_control().flow_cache().hits(), 0u);
    ExpectConservation(bed.sim().profiler());
  }
}

// Folded flamegraph stacks must tile each core's busy time exactly: the
// per-(path,core) rows plus the explicit "[unaccounted]" row sum to
// busy_ns, and the export is sorted (byte-stable).
TEST(ProfilerExportTest, FoldedStacksTileToBusyNs) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  bed.sim().profiler().set_enabled(true);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  auto sock = Socket::Connect(&k, pid, kPeerIp, 7777, {});
  ASSERT_TRUE(sock.ok());
  const std::vector<uint8_t> payload(400, 0x11);
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(sock->Send(payload).ok());
  }
  bed.sim().Run();

  const Profiler& prof = bed.sim().profiler();
  std::map<std::string, uint64_t> busy;
  for (const auto& c : prof.CoreReports()) {
    busy[c.name] = c.busy_ns;
  }
  std::map<std::string, uint64_t> folded_sum;
  std::istringstream folded(prof.FoldedStacks());
  std::string prev;
  for (std::string line; std::getline(folded, line);) {
    EXPECT_LT(prev, line) << "folded stacks must be sorted";
    prev = line;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string stack = line.substr(0, space);
    const uint64_t ns = std::stoull(line.substr(space + 1));
    folded_sum[stack.substr(0, stack.find(';'))] += ns;
  }
  for (const auto& [core, total] : busy) {
    EXPECT_EQ(folded_sum[core], total) << core;
  }
}

TEST(ProfilerOwnerTest, LedgerSplitsByPidAndBillsSram) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "owner ledger compiles out at NORMAN_STATS_LEVEL=0";
  }
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  bed.sim().profiler().set_enabled(true);
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");
  const auto web_pid = *k.processes().Spawn(1001, "webapp");
  const auto batch_pid = *k.processes().Spawn(1002, "batch");
  // batch's second connection hits an OUTPUT DROP rule: those packets land
  // in batch's drop ledger, not a global bucket.
  ASSERT_TRUE(tools::IptablesAppend(
                  &k, kernel::kRootUid,
                  "-A OUTPUT -p udp --dport 9999 -j DROP")
                  .ok());
  auto web = Socket::Connect(&k, web_pid, kPeerIp, 7777, {});
  auto batch = Socket::Connect(&k, batch_pid, kPeerIp, 8888, {});
  auto denied = Socket::Connect(&k, batch_pid, kPeerIp, 9999, {});
  ASSERT_TRUE(web.ok() && batch.ok() && denied.ok());

  const std::vector<uint8_t> big(1000, 0xaa);
  const std::vector<uint8_t> small(100, 0xbb);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(web->Send(big).ok());
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(batch->Send(small).ok());
    ASSERT_TRUE(denied->Send(small).ok());
  }
  bed.sim().Run();

  auto find_owner = [&](uint32_t pid) {
    for (const auto& o : bed.sim().profiler().OwnerReports()) {
      if (o.pid == pid) {
        return o;
      }
    }
    return Profiler::OwnerReport{};
  };
  const auto web_row = find_owner(web_pid);
  const auto batch_row = find_owner(batch_pid);
  EXPECT_GT(web_row.pkts, batch_row.pkts);
  EXPECT_GT(web_row.bytes, batch_row.bytes);
  EXPECT_GT(web_row.nic_ns, batch_row.nic_ns);
  EXPECT_EQ(web_row.drops, 0u);
  EXPECT_GE(batch_row.drops, 3u);  // the denied connection's sends
  // SRAM ledger: flow entry (384B) + ring state (64B) per installed flow.
  EXPECT_EQ(web_row.sram_bytes, 448);
  EXPECT_EQ(batch_row.sram_bytes, 2 * 448);
  // Close releases the footprint back out of the owner's ledger.
  ASSERT_TRUE(web->Close().ok());
  bed.sim().Run();
  EXPECT_EQ(find_owner(web_pid).sram_bytes, 0);
}

TEST(ProfilerOwnerTest, UnmatchedWireTrafficStaysUnowned) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "owner ledger compiles out at NORMAN_STATS_LEVEL=0";
  }
  workload::TestBedOptions opts;
  workload::TestBed bed(opts);
  bed.sim().profiler().set_enabled(true);
  Nanos t = kMicrosecond;
  for (int i = 0; i < 5; ++i) {
    bed.InjectUdpFromPeer(4444, 5555, 64, t += kMicrosecond);
  }
  bed.sim().Run();
  const auto owners = bed.sim().profiler().OwnerReports();
  ASSERT_FALSE(owners.empty());
  EXPECT_EQ(owners[0].pid, 0u);
  EXPECT_GE(owners[0].pkts, 5u);
  ExpectConservation(bed.sim().profiler());
}

// Scope entry counts keep zero-cost contexts (the maintenance tick) visible
// in the attribution tree even though they charge no nanoseconds.
TEST(ProfilerExportTest, MaintenanceTickVisibleByEntries) {
  if (!telemetry::kHotStatsEnabled) {
    GTEST_SKIP() << "scopes compile out at NORMAN_STATS_LEVEL=0";
  }
  workload::TestBedOptions opts;
  opts.echo = true;
  opts.kernel.housekeeping_period = 50 * kMicrosecond;
  workload::TestBed bed(opts);
  bed.sim().profiler().set_enabled(true);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  k.StartMaintenance();
  auto sock = Socket::Connect(&k, pid, kPeerIp, 7777, {});
  ASSERT_TRUE(sock.ok());
  // A 1 ms traffic horizon guarantees the 50 us tick fires many times
  // before the lazy re-arm parks it.
  workload::PoissonSender sender(&bed.sim(), &*sock, 500, 20 * kMicrosecond,
                                 7);
  sender.Start(0, 1 * kMillisecond);
  bed.sim().Run();
  ASSERT_GT(k.maintenance_ticks(), 0u);
  uint64_t tick_entries = 0;
  for (const auto& s : bed.sim().profiler().StackReports()) {
    if (s.stack.find("kernel.maintenance") != std::string::npos) {
      tick_entries += s.entries;
    }
  }
  EXPECT_EQ(tick_entries, k.maintenance_ticks());
}

TEST(ProfilerExportTest, DisabledProfilerAttributesNothing) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);  // profiler stays off
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  auto sock = Socket::Connect(&k, pid, kPeerIp, 7777, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send(std::vector<uint8_t>(100, 0x3c)).ok());
  bed.sim().Run();
  for (const auto& c : bed.sim().profiler().CoreReports()) {
    EXPECT_EQ(c.attributed_ns, 0u) << c.name;
    EXPECT_EQ(c.unaccounted_ns, c.busy_ns) << c.name;
  }
  for (const auto& o : bed.sim().profiler().OwnerReports()) {
    EXPECT_EQ(o.pkts, 0u);
    EXPECT_EQ(o.nic_ns, 0u);
  }
}

// The norman-top --by-pid view renders the ledger with process names.
TEST(ProfilerExportTest, TopByPidRendersOwnerRows) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  bed.sim().profiler().set_enabled(true);
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");
  const auto web_pid = *k.processes().Spawn(1001, "webapp");
  const auto batch_pid = *k.processes().Spawn(1002, "batch");
  auto web = Socket::Connect(&k, web_pid, kPeerIp, 7777, {});
  auto batch = Socket::Connect(&k, batch_pid, kPeerIp, 8888, {});
  ASSERT_TRUE(web.ok() && batch.ok());
  ASSERT_TRUE(web->Send(std::vector<uint8_t>(400, 0x01)).ok());
  ASSERT_TRUE(batch->Send(std::vector<uint8_t>(100, 0x02)).ok());
  bed.sim().Run();
  const std::string view = tools::TopByPid(bed.kernel());
  EXPECT_NE(view.find("norman-top --by-pid"), std::string::npos);
  EXPECT_NE(view.find("(webapp)"), std::string::npos);
  EXPECT_NE(view.find("(batch)"), std::string::npos);
  // Byte-stable: rendering twice gives the identical string.
  EXPECT_EQ(view, tools::TopByPid(bed.kernel()));
}

// ---- Satellite: registry-tracked BatchedCounter flush -----------------------

TEST(BatchedCounterFlushTest, ReportPathsFoldPendingCounts) {
  sim::Simulator sim;
  auto* c = sim.metrics().GetCounter("test.burst");
  telemetry::BatchedCounter b(c, &sim.metrics());
  EXPECT_EQ(sim.metrics().num_tracked_batched(), 1u);
  b.Add(3);  // odd-sized burst, deliberately never flushed by hand
  if (telemetry::kHotStatsEnabled) {
    EXPECT_EQ(c->value(), 0u);  // still pending in the accumulator
    (void)sim.metrics().TextReport();
    EXPECT_EQ(c->value(), 3u);  // the report folded it in first
    b.Add(2);
    (void)sim.metrics().Snapshot();
    EXPECT_EQ(c->value(), 5u);
    b.Add(1);
    (void)sim.metrics().JsonReport();
    EXPECT_EQ(c->value(), 6u);
  } else {
    (void)sim.metrics().TextReport();
    EXPECT_EQ(c->value(), 0u);  // hot tier compiled out entirely
  }
}

TEST(BatchedCounterFlushTest, DestructionUntracksAndFlushes) {
  sim::Simulator sim;
  auto* c = sim.metrics().GetCounter("test.final");
  {
    telemetry::BatchedCounter b(c, &sim.metrics());
    b.Add(7);
  }
  EXPECT_EQ(sim.metrics().num_tracked_batched(), 0u);
  EXPECT_EQ(c->value(), telemetry::kHotStatsEnabled ? 7u : 0u);
}

TEST(BatchedCounterFlushTest, UntrackedCounterKeepsLegacyBehavior) {
  sim::Simulator sim;
  auto* c = sim.metrics().GetCounter("test.legacy");
  telemetry::BatchedCounter b(c);  // not registry-tracked
  b.Add(4);
  EXPECT_EQ(sim.metrics().num_tracked_batched(), 0u);
  (void)sim.metrics().TextReport();  // cannot see the accumulator
  EXPECT_EQ(c->value(), 0u);
  b.Flush();
  EXPECT_EQ(c->value(), telemetry::kHotStatsEnabled ? 4u : 0u);
}

TEST(BatchedCounterFlushTest, OddFinalBurstVisibleInEndOfRunReport) {
  workload::TestBedOptions opts;
  opts.echo = false;
  workload::TestBed bed(opts);
  bed.sim().set_dispatch_batch(64);
  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  auto sock = Socket::Connect(&k, pid, kPeerIp, 7777, {});
  ASSERT_TRUE(sock.ok());
  // 33 sends with a TX fetch batch of 16: the final burst is odd-sized
  // (one descriptor), and its accumulator must still reach the counter by
  // the time any report path reads it.
  const std::vector<uint8_t> payload(120, 0x42);
  for (int i = 0; i < 33; ++i) {
    ASSERT_TRUE(sock->Send(payload).ok());
  }
  bed.sim().Run();
  bed.sim().metrics().FlushPending();
  if (telemetry::kHotStatsEnabled) {
    EXPECT_EQ(bed.nic().stats().tx_seen(), 33u);
  }
}

}  // namespace
}  // namespace norman
