#include "src/net/packet_pool.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace norman::net {
namespace {

TEST(PacketPoolTest, AcquireZeroFills) {
  PacketPool pool;
  auto p = pool.Acquire(128);
  ASSERT_EQ(p->size(), 128u);
  for (uint8_t b : p->bytes()) {
    EXPECT_EQ(b, 0);
  }
}

TEST(PacketPoolTest, ReleaseThenAcquireReusesSamePacket) {
  PacketPool pool;
  auto p = pool.Acquire(500);
  Packet* raw = p.get();
  p.reset();  // back to the pool
  EXPECT_EQ(pool.free_packets(), 1u);

  auto q = pool.Acquire(400);  // same 512B capacity class
  EXPECT_EQ(q.get(), raw);
  EXPECT_EQ(pool.free_packets(), 0u);
  EXPECT_EQ(pool.counters().hits, 1u);
  EXPECT_EQ(pool.counters().misses, 1u);
}

TEST(PacketPoolTest, ReuseZeroFillsRecycledBytes) {
  PacketPool pool;
  auto p = pool.Acquire(64);
  for (auto& b : p->mutable_bytes()) {
    b = 0xff;
  }
  p.reset();
  auto q = pool.Acquire(64);
  for (uint8_t b : q->bytes()) {
    EXPECT_EQ(b, 0);
  }
}

TEST(PacketPoolTest, AcquireUninitializedNeverShrinksCapacity) {
  PacketPool pool;
  auto p = pool.Acquire(1000);  // 1024B class
  p.reset();
  auto q = pool.AcquireUninitialized(600);
  EXPECT_EQ(q->size(), 600u);
  EXPECT_GE(q->mutable_bytes().size(), 600u);
}

TEST(PacketPoolTest, BucketsMatchByCapacityClass) {
  PacketPool pool;
  auto small = pool.Acquire(100);   // 128B class
  auto large = pool.Acquire(2000);  // 2048B class
  Packet* raw_small = small.get();
  Packet* raw_large = large.get();
  small.reset();
  large.reset();

  // A 1500B request must skip the 128B buffer and take the 2048B one.
  auto q = pool.Acquire(1500);
  EXPECT_EQ(q.get(), raw_large);
  // And a 64B request reuses the small one (ceil bucket 64 <= cap 128? no:
  // ceil bucket of 64 is the 64B class, which is empty — the 128B buffer
  // stays put and a fresh packet is carved).
  auto r = pool.Acquire(64);
  EXPECT_NE(r.get(), raw_small);
  auto s = pool.Acquire(100);
  EXPECT_EQ(s.get(), raw_small);
}

TEST(PacketPoolTest, OversizeBuffersRecycleByFirstFit) {
  PacketPool pool;
  auto jumbo = pool.Acquire(PacketPool::kMaxBucketBytes + 1000);
  Packet* raw = jumbo.get();
  jumbo.reset();
  auto again = pool.Acquire(PacketPool::kMaxBucketBytes + 500);
  EXPECT_EQ(again.get(), raw);
  // Too big for the recycled jumbo: fresh allocation.
  auto bigger = pool.Acquire(PacketPool::kMaxBucketBytes + 100000);
  EXPECT_EQ(bigger->size(), PacketPool::kMaxBucketBytes + 100000);
}

TEST(PacketPoolTest, ExhaustionFallsBackToPlainAllocation) {
  PacketPool pool(/*max_free_per_bucket=*/2);
  std::vector<PacketPtr> held;
  for (int i = 0; i < 5; ++i) {
    held.push_back(pool.Acquire(200));
  }
  held.clear();  // 5 releases into a bucket capped at 2
  EXPECT_EQ(pool.free_packets(), 2u);
  EXPECT_EQ(pool.counters().dropped, 3u);
  EXPECT_EQ(pool.counters().releases, 5u);
}

TEST(PacketPoolTest, AdoptTakesOwnershipOfBytes) {
  PacketPool pool;
  std::vector<uint8_t> bytes{1, 2, 3, 4};
  const uint8_t* data = bytes.data();
  auto p = pool.Adopt(std::move(bytes));
  ASSERT_EQ(p->size(), 4u);
  EXPECT_EQ(p->bytes().data(), data);  // moved, not copied
  EXPECT_EQ(p->bytes()[2], 3);
}

TEST(PacketPoolTest, CountersTrackOutstandingAndHighWater) {
  PacketPool pool;
  auto a = pool.Acquire(100);
  auto b = pool.Acquire(100);
  EXPECT_EQ(pool.counters().outstanding, 2u);
  EXPECT_EQ(pool.counters().high_water, 2u);
  a.reset();
  EXPECT_EQ(pool.counters().outstanding, 1u);
  EXPECT_EQ(pool.counters().high_water, 2u);
  b.reset();
  EXPECT_EQ(pool.counters().outstanding, 0u);
  EXPECT_DOUBLE_EQ(pool.counters().HitRate(), 0.0);
  auto c = pool.Acquire(100);
  EXPECT_DOUBLE_EQ(pool.counters().HitRate(), 1.0 / 3.0);
}

TEST(PacketPoolTest, MetadataResetOnReuse) {
  PacketPool pool;
  auto p = pool.Acquire(100);
  p->meta().created_at = 12345;
  p->meta().connection = 7;
  p.reset();
  auto q = pool.Acquire(100);
  EXPECT_EQ(q->meta().created_at, 0);
  EXPECT_EQ(q->meta().connection, 0u);
}

TEST(PacketPoolTest, ReleaseRoundTripsThroughRawPointer) {
  // The NIC/kernel frequently release() a PacketPtr into a scheduler lambda
  // and re-wrap it later; the deleter must still return it to its pool.
  PacketPool pool;
  auto p = pool.Acquire(100);
  Packet* raw = p.release();
  PacketPtr rewrapped(raw);
  rewrapped.reset();
  EXPECT_EQ(pool.free_packets(), 1u);
  EXPECT_EQ(pool.counters().outstanding, 0u);
}

TEST(PacketPoolTest, DefaultPoolBacksMakePacket) {
  const auto before = PacketPool::Default().counters().acquisitions();
  auto p = MakePacket(64);
  auto q = MakePacket(std::vector<uint8_t>{1, 2, 3});
  EXPECT_EQ(PacketPool::Default().counters().acquisitions(), before + 2);
}

}  // namespace
}  // namespace norman::net
