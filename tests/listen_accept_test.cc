// Server-side socket tests: listen/accept through the RAII norman::Listener,
// auto-installed inbound connections with listener-stamped identity, and
// full client/server round trips between two simulated hosts.
#include <gtest/gtest.h>

#include "src/norman/listener.h"
#include "src/norman/socket.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using kernel::ConnectOptions;
using net::Ipv4Address;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

class ListenAcceptTest : public ::testing::Test {
 protected:
  ListenAcceptTest() {
    bed_.kernel().processes().AddUser(1000, "svc");
    server_pid_ = *bed_.kernel().processes().Spawn(1000, "server");
  }

  Listener Listen(uint16_t port) {
    auto listener = Listener::Create(&bed_.kernel(), server_pid_, port);
    EXPECT_TRUE(listener.ok()) << listener.status();
    return std::move(listener).value();
  }

  workload::TestBed bed_;
  kernel::Pid server_pid_ = 0;
};

TEST_F(ListenAcceptTest, InboundPacketCreatesAcceptableConnection) {
  Listener listener = Listen(8080);
  // Nothing pending yet: would-block, not a missing resource.
  EXPECT_EQ(listener.Accept().status().code(), StatusCode::kUnavailable);

  // A peer sends the first datagram of a new flow to :8080.
  bed_.InjectUdpFromPeer(/*src_port=*/5555, /*dst_port=*/8080, 64, 100);
  bed_.sim().Run();

  auto conn = listener.Accept();
  ASSERT_TRUE(conn.ok()) << conn.status();
  EXPECT_EQ(conn->tuple().src_port, 8080);
  EXPECT_EQ(conn->tuple().dst_port, 5555);
  EXPECT_EQ(conn->tuple().dst_ip, kPeerIp);

  // The trigger packet is waiting in the RX ring.
  auto data = conn->Recv();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 64u);
}

TEST_F(ListenAcceptTest, ConnectionStampedWithListenerIdentity) {
  Listener listener = Listen(8080);
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  auto conn = listener.Accept();
  ASSERT_TRUE(conn.ok());
  const auto* entry =
      bed_.kernel().nic_control().LookupFlow(conn->conn_id());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->owner.owner_pid, server_pid_);
  EXPECT_EQ(entry->owner.owner_uid, 1000u);
  EXPECT_EQ(entry->comm, "server");
}

TEST_F(ListenAcceptTest, SubsequentPacketsMatchInHardware) {
  Listener listener = Listen(8080);
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  auto conn = listener.Accept();
  ASSERT_TRUE(conn.ok());
  (void)conn->Recv();

  const uint64_t unmatched_before = bed_.nic().stats().rx_unmatched();
  // Second packet of the same flow: NIC flow table match, no host involvement.
  bed_.InjectUdpFromPeer(5555, 8080, 20, bed_.sim().Now() + 100);
  bed_.sim().Run();
  EXPECT_EQ(bed_.nic().stats().rx_unmatched(), unmatched_before);
  auto data = conn->Recv();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 20u);
}

TEST_F(ListenAcceptTest, DistinctPeersDistinctConnections) {
  Listener listener = Listen(8080);
  bed_.InjectUdpFromPeer(1111, 8080, 10, 100);
  bed_.InjectUdpFromPeer(2222, 8080, 10, 200);
  bed_.sim().Run();
  auto c1 = listener.Accept();
  auto c2 = listener.Accept();
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1->conn_id(), c2->conn_id());
  EXPECT_EQ(c1->tuple().dst_port, 1111);
  EXPECT_EQ(c2->tuple().dst_port, 2222);
  EXPECT_EQ(listener.Accept().status().code(), StatusCode::kUnavailable);
}

TEST_F(ListenAcceptTest, ServerCanReplyOnAcceptedConnection) {
  Listener listener = Listen(8080);
  bed_.InjectUdpFromPeer(5555, 8080, 16, 100);
  bed_.sim().Run();
  auto conn = listener.Accept();
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Send("response").ok());
  bed_.sim().Run();
  ASSERT_EQ(bed_.egress_frames(), 1u);
  auto parsed = net::ParseFrame(bed_.egress()[0]->bytes());
  EXPECT_EQ(parsed->flow()->src_port, 8080);
  EXPECT_EQ(parsed->flow()->dst_port, 5555);
}

TEST_F(ListenAcceptTest, OnlyListenerMayAccept) {
  Listener listener = Listen(8080);
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  // A different process cannot accept on this port even with its own
  // Listener-shaped handle: the kernel checks the registered pid.
  const auto other = *bed_.kernel().processes().Spawn(1000, "other");
  EXPECT_EQ(bed_.kernel().Accept(other, 8080).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ListenAcceptTest, PortCollisionRejected) {
  Listener listener = Listen(8080);
  EXPECT_EQ(Listener::Create(&bed_.kernel(), server_pid_, 8080)
                .status()
                .code(),
            StatusCode::kAlreadyExists);
  // Different proto on the same port is fine.
  auto tcp = Listener::Create(&bed_.kernel(), server_pid_, 8080,
                              net::IpProto::kTcp);
  EXPECT_TRUE(tcp.ok());
}

TEST_F(ListenAcceptTest, ListenerDestructionDropsNewPeers) {
  {
    Listener listener = Listen(8080);
    // Registration lives exactly as long as the Listener.
  }
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  // Nobody is listening: no connection was installed.
  EXPECT_EQ(bed_.kernel().Accept(server_pid_, 8080).status().code(),
            StatusCode::kNotFound);
  EXPECT_TRUE(bed_.kernel().ListConnections().empty());
}

TEST_F(ListenAcceptTest, StopUnbindsEarly) {
  Listener listener = Listen(8080);
  listener.Stop();
  EXPECT_FALSE(listener.valid());
  // A stopped handle is unusable...
  EXPECT_EQ(listener.Accept().status().code(),
            StatusCode::kFailedPrecondition);
  // ...and the port is free for rebinding.
  auto again = Listener::Create(&bed_.kernel(), server_pid_, 8080);
  EXPECT_TRUE(again.ok());
}

TEST_F(ListenAcceptTest, MoveTransfersOwnership) {
  Listener listener = Listen(8080);
  Listener moved = std::move(listener);
  EXPECT_TRUE(moved.valid());
  EXPECT_EQ(moved.port(), 8080);
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  EXPECT_TRUE(moved.Accept().ok());
}

TEST_F(ListenAcceptTest, TrafficToUnboundPortIsDropped) {
  bed_.InjectUdpFromPeer(5555, 9999, 10, 100);
  bed_.sim().Run();
  EXPECT_EQ(bed_.nic().stats().rx_unmatched(), telemetry::HotCount(1));
  // No connection appeared.
  EXPECT_TRUE(bed_.kernel().ListConnections().empty());
}

TEST_F(ListenAcceptTest, ListenUnknownPidFails) {
  EXPECT_EQ(Listener::Create(&bed_.kernel(), 424242, 8080).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ListenAcceptTest, AcceptedConnectionSupportsNotifications) {
  kernel::ConnectOptions accept_opts;
  accept_opts.notify_rx = true;
  auto listener = Listener::Create(&bed_.kernel(), server_pid_, 8080,
                                   net::IpProto::kUdp, accept_opts);
  ASSERT_TRUE(listener.ok());
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  auto conn = listener->Accept();
  ASSERT_TRUE(conn.ok());
  (void)conn->Recv();  // drain the trigger packet

  bool woke = false;
  ASSERT_TRUE(conn->RecvBlocking([&](std::vector<uint8_t> data) {
                    woke = true;
                    EXPECT_EQ(data.size(), 32u);
                  })
                  .ok());
  bed_.InjectUdpFromPeer(5555, 8080, 32, bed_.sim().Now() + 1000);
  bed_.sim().Run();
  EXPECT_TRUE(woke);
}

}  // namespace
}  // namespace norman
