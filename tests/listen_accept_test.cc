// Server-side socket tests: listen/accept, auto-installed inbound
// connections with listener-stamped identity, and full client/server
// round trips between two simulated hosts.
#include <gtest/gtest.h>

#include "src/norman/socket.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using kernel::ConnectOptions;
using net::Ipv4Address;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

class ListenAcceptTest : public ::testing::Test {
 protected:
  ListenAcceptTest() {
    bed_.kernel().processes().AddUser(1000, "svc");
    server_pid_ = *bed_.kernel().processes().Spawn(1000, "server");
  }

  workload::TestBed bed_;
  kernel::Pid server_pid_ = 0;
};

TEST_F(ListenAcceptTest, InboundPacketCreatesAcceptableConnection) {
  ASSERT_TRUE(Socket::Listen(&bed_.kernel(), server_pid_, 8080).ok());
  // Nothing pending yet.
  EXPECT_EQ(Socket::Accept(&bed_.kernel(), server_pid_, 8080).status().code(),
            StatusCode::kNotFound);

  // A peer sends the first datagram of a new flow to :8080.
  bed_.InjectUdpFromPeer(/*src_port=*/5555, /*dst_port=*/8080, 64, 100);
  bed_.sim().Run();

  auto conn = Socket::Accept(&bed_.kernel(), server_pid_, 8080);
  ASSERT_TRUE(conn.ok()) << conn.status();
  EXPECT_EQ(conn->tuple().src_port, 8080);
  EXPECT_EQ(conn->tuple().dst_port, 5555);
  EXPECT_EQ(conn->tuple().dst_ip, kPeerIp);

  // The trigger packet is waiting in the RX ring.
  auto data = conn->Recv();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 64u);
}

TEST_F(ListenAcceptTest, ConnectionStampedWithListenerIdentity) {
  ASSERT_TRUE(Socket::Listen(&bed_.kernel(), server_pid_, 8080).ok());
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  auto conn = Socket::Accept(&bed_.kernel(), server_pid_, 8080);
  ASSERT_TRUE(conn.ok());
  const auto* entry =
      bed_.kernel().nic_control().LookupFlow(conn->conn_id());
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->owner.owner_pid, server_pid_);
  EXPECT_EQ(entry->owner.owner_uid, 1000u);
  EXPECT_EQ(entry->comm, "server");
}

TEST_F(ListenAcceptTest, SubsequentPacketsMatchInHardware) {
  ASSERT_TRUE(Socket::Listen(&bed_.kernel(), server_pid_, 8080).ok());
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  auto conn = Socket::Accept(&bed_.kernel(), server_pid_, 8080);
  ASSERT_TRUE(conn.ok());
  (void)conn->Recv();

  const uint64_t unmatched_before = bed_.nic().stats().rx_unmatched();
  // Second packet of the same flow: NIC flow table match, no host involvement.
  bed_.InjectUdpFromPeer(5555, 8080, 20, bed_.sim().Now() + 100);
  bed_.sim().Run();
  EXPECT_EQ(bed_.nic().stats().rx_unmatched(), unmatched_before);
  auto data = conn->Recv();
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->size(), 20u);
}

TEST_F(ListenAcceptTest, DistinctPeersDistinctConnections) {
  ASSERT_TRUE(Socket::Listen(&bed_.kernel(), server_pid_, 8080).ok());
  bed_.InjectUdpFromPeer(1111, 8080, 10, 100);
  bed_.InjectUdpFromPeer(2222, 8080, 10, 200);
  bed_.sim().Run();
  auto c1 = Socket::Accept(&bed_.kernel(), server_pid_, 8080);
  auto c2 = Socket::Accept(&bed_.kernel(), server_pid_, 8080);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(c1->conn_id(), c2->conn_id());
  EXPECT_EQ(c1->tuple().dst_port, 1111);
  EXPECT_EQ(c2->tuple().dst_port, 2222);
  EXPECT_EQ(Socket::Accept(&bed_.kernel(), server_pid_, 8080).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ListenAcceptTest, ServerCanReplyOnAcceptedConnection) {
  ASSERT_TRUE(Socket::Listen(&bed_.kernel(), server_pid_, 8080).ok());
  bed_.InjectUdpFromPeer(5555, 8080, 16, 100);
  bed_.sim().Run();
  auto conn = Socket::Accept(&bed_.kernel(), server_pid_, 8080);
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->Send("response").ok());
  bed_.sim().Run();
  ASSERT_EQ(bed_.egress_frames(), 1u);
  auto parsed = net::ParseFrame(bed_.egress()[0]->bytes());
  EXPECT_EQ(parsed->flow()->src_port, 8080);
  EXPECT_EQ(parsed->flow()->dst_port, 5555);
}

TEST_F(ListenAcceptTest, OnlyListenerMayAccept) {
  ASSERT_TRUE(Socket::Listen(&bed_.kernel(), server_pid_, 8080).ok());
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  const auto other = *bed_.kernel().processes().Spawn(1000, "other");
  EXPECT_EQ(Socket::Accept(&bed_.kernel(), other, 8080).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(ListenAcceptTest, PortCollisionRejected) {
  ASSERT_TRUE(Socket::Listen(&bed_.kernel(), server_pid_, 8080).ok());
  EXPECT_EQ(bed_.kernel()
                .Listen(server_pid_, 8080, net::IpProto::kUdp, {})
                .code(),
            StatusCode::kAlreadyExists);
  // Different proto on the same port is fine.
  EXPECT_TRUE(
      bed_.kernel().Listen(server_pid_, 8080, net::IpProto::kTcp, {}).ok());
}

TEST_F(ListenAcceptTest, StopListeningDropsNewPeers) {
  ASSERT_TRUE(Socket::Listen(&bed_.kernel(), server_pid_, 8080).ok());
  ASSERT_TRUE(bed_.kernel().StopListening(server_pid_, 8080).ok());
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  EXPECT_EQ(Socket::Accept(&bed_.kernel(), server_pid_, 8080).status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(bed_.kernel().StopListening(server_pid_, 8080).ok());
}

TEST_F(ListenAcceptTest, TrafficToUnboundPortIsDropped) {
  bed_.InjectUdpFromPeer(5555, 9999, 10, 100);
  bed_.sim().Run();
  EXPECT_EQ(bed_.nic().stats().rx_unmatched(), 1u);
  // No connection appeared.
  EXPECT_TRUE(bed_.kernel().ListConnections().empty());
}

TEST_F(ListenAcceptTest, ListenUnknownPidFails) {
  EXPECT_EQ(Socket::Listen(&bed_.kernel(), 424242, 8080).code(),
            StatusCode::kNotFound);
}

TEST_F(ListenAcceptTest, AcceptedConnectionSupportsNotifications) {
  kernel::ConnectOptions accept_opts;
  accept_opts.notify_rx = true;
  ASSERT_TRUE(Socket::Listen(&bed_.kernel(), server_pid_, 8080,
                             net::IpProto::kUdp, accept_opts)
                  .ok());
  bed_.InjectUdpFromPeer(5555, 8080, 10, 100);
  bed_.sim().Run();
  auto conn = Socket::Accept(&bed_.kernel(), server_pid_, 8080);
  ASSERT_TRUE(conn.ok());
  (void)conn->Recv();  // drain the trigger packet

  bool woke = false;
  ASSERT_TRUE(conn->RecvBlocking([&](std::vector<uint8_t> data) {
                    woke = true;
                    EXPECT_EQ(data.size(), 32u);
                  })
                  .ok());
  bed_.InjectUdpFromPeer(5555, 8080, 32, bed_.sim().Now() + 1000);
  bed_.sim().Run();
  EXPECT_TRUE(woke);
}

}  // namespace
}  // namespace norman
