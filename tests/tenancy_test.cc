// Multi-tenant isolation: the WFQ cycle-share arithmetic in TenantTable,
// the kernel's quota admission at every charge point (ring memory, SRAM,
// overlay slots), the declarative Configure contract (validate everything,
// then apply — a rejected config changes nothing), tenant teardown
// reclaim, and the bit-determinism guarantee that registered-but-idle
// tenancy leaves trajectories untouched.
#include <gtest/gtest.h>

#include <vector>

#include "src/common/metrics.h"
#include "src/nic/ring.h"
#include "src/nic/sram.h"
#include "src/nic/tenant_table.h"
#include "src/norman/socket.h"
#include "src/overlay/assembler.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using kernel::Chain;
using kernel::kRootUid;
using kernel::NicConfig;
using kernel::TenantSpec;

// ---- TenantTable: WFQ virtual-server arithmetic ---------------------------

TEST(TenantTableTest, GatedOnlyWhenEnabledAndRegistered) {
  telemetry::MetricsRegistry registry;
  nic::TenantTable table(&registry);
  table.Configure(7, 2);
  EXPECT_FALSE(table.Gated(7)) << "disabled table must gate nobody";
  table.SetEnabled(true);
  EXPECT_TRUE(table.Gated(7));
  EXPECT_FALSE(table.Gated(8)) << "unregistered tenant";
  EXPECT_FALSE(table.Gated(0)) << "the system tenant is never gated";
  table.Remove(7);
  EXPECT_FALSE(table.Gated(7));
}

TEST(TenantTableTest, SoloTenantSeesNoStretch) {
  telemetry::MetricsRegistry registry;
  nic::TenantTable table(&registry);
  table.SetEnabled(true);
  table.Configure(1, 3);
  // Alone on the lane, stretched == cost: the horizon advances at real
  // time, so work arriving after the horizon is never throttled.
  EXPECT_EQ(table.Admit(1, 0, 0, 100), 0);
  EXPECT_EQ(table.Admit(1, 0, 100, 100), 100);
  EXPECT_EQ(table.Admit(1, 0, 200, 100), 200);
  EXPECT_EQ(table.throttled_ns(1), 0u);
}

TEST(TenantTableTest, ContendedSharesFollowWeights) {
  telemetry::MetricsRegistry registry;
  nic::TenantTable table(&registry);
  table.SetEnabled(true);
  table.Configure(1, 3);  // heavy share
  table.Configure(2, 1);  // light share
  // Both flood at t=0 with equal per-packet cost. The light tenant's
  // horizon stretches by active_weight/weight = 4x per packet, the heavy
  // one's by 4/3x, so the light tenant queues ~3x deeper behind itself.
  for (int i = 0; i < 8; ++i) {
    table.Admit(1, 0, 0, 100);
    table.Admit(2, 0, 0, 100);
  }
  const auto reports = table.Reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].tenant, 1u);
  EXPECT_EQ(reports[1].tenant, 2u);
  // Equal work admitted...
  EXPECT_EQ(reports[0].cycles_ns, 800u);
  EXPECT_EQ(reports[1].cycles_ns, 800u);
  // ...but the light tenant waits behind its own share ~3x longer.
  EXPECT_GT(reports[1].throttled_ns, 2 * reports[0].throttled_ns);
  // The aggressor's backlog lives on its own horizon: the exact start
  // times are pinned (regression guard for the virtual-server math).
  EXPECT_EQ(table.Admit(2, 0, 0, 100), 3200);  // 8 * 400ns of stretch
  EXPECT_EQ(table.Admit(1, 0, 0, 100),
            100 + 7 * 133);  // first admit unstretched, then 100*4/3 each
}

TEST(TenantTableTest, LanesAreIndependent) {
  telemetry::MetricsRegistry registry;
  nic::TenantTable table(&registry);
  table.SetEnabled(true);
  table.Configure(1, 1);
  for (int i = 0; i < 4; ++i) {
    table.Admit(1, 0, 0, 100);  // pile backlog onto lane 0
  }
  // Lane 1 has its own horizon: no carry-over throttle.
  EXPECT_EQ(table.Admit(1, 1, 0, 100), 0);
  // Out-of-range lanes clamp to lane 0 (the unsharded pipeline), which
  // is now backlogged.
  EXPECT_GT(table.Admit(1, nic::TenantTable::kMaxLanes, 0, 100), 0);
}

// ---- SramAllocator: the per-tenant quota dimension ------------------------

TEST(SramQuotaTest, TenantQuotaCapsAllocations) {
  nic::SramAllocator sram(16 * 1024);
  sram.SetTenantQuota(42, 256);
  EXPECT_TRUE(sram.Allocate("flow_table", 200, /*pid=*/5, /*tenant=*/42).ok());
  // Over quota: the tenant's own budget refuses, global SRAM is untouched.
  const Status over = sram.Allocate("flow_table", 200, 5, 42);
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(sram.TenantUsed(42), 200u);
  // Another tenant (and the system share) are unaffected by 42's limit.
  EXPECT_TRUE(sram.Allocate("flow_table", 200, 6, 43).ok());
  EXPECT_TRUE(sram.Allocate("flow_table", 200, 0, 0).ok());
  // Free refunds the tenant dimension too.
  sram.Free("flow_table", 200, 42);
  EXPECT_EQ(sram.TenantUsed(42), 0u);
  EXPECT_TRUE(sram.Allocate("flow_table", 200, 5, 42).ok());
}

// ---- Kernel admission: ring budget, SRAM envelope, overlay slots ----------

TEST(TenancyTest, RingBudgetAdmission) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  const auto pid = *k.processes().Spawn(1001, "app");

  TenantSpec spec;
  spec.ring_bytes = 2 * nic::kHotWorkingSetBytes;  // exactly one connection
  auto tenant = k.CreateTenant(kRootUid, 1001, spec);
  ASSERT_TRUE(tenant.ok());

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto first = Socket::Connect(&k, pid, peer, 1000, {});
  ASSERT_TRUE(first.ok());
  // The budget is spent: the second connection is refused before any NIC
  // state is touched.
  auto second = Socket::Connect(&k, pid, peer, 2000, {});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  // Close refunds the working sets; the retry is admitted.
  first->Close();
  auto retry = Socket::Connect(&k, pid, peer, 3000, {});
  EXPECT_TRUE(retry.ok());
}

TEST(TenancyTest, SramEnvelopeRefusesFlowInstall) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");
  const auto capped_pid = *k.processes().Spawn(1001, "capped");
  const auto free_pid = *k.processes().Spawn(1002, "free");

  TenantSpec spec;
  spec.sram_bytes = 1;  // smaller than a single flow entry
  auto tenant = k.CreateTenant(kRootUid, 1001, spec);
  ASSERT_TRUE(tenant.ok());

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto refused = Socket::Connect(&k, capped_pid, peer, 1000, {});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  // The refusal was the tenant's own envelope, not the shared SRAM: an
  // unregistered uid installs fine.
  EXPECT_TRUE(Socket::Connect(&k, free_pid, peer, 2000, {}).ok());
}

TEST(TenancyTest, OverlaySlotQuotaAndContention) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");

  TenantSpec one_slot;
  one_slot.overlay_slots = 1;
  auto a = k.CreateTenant(kRootUid, 1001, one_slot);
  auto b = k.CreateTenant(kRootUid, 1002, one_slot);
  ASSERT_TRUE(a.ok() && b.ok());

  auto pass = overlay::Assemble("ret 1");
  ASSERT_TRUE(pass.ok());

  EXPECT_EQ(k.LoadTenantPolicy(9999, Chain::kOutput, *pass).status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(k.LoadTenantPolicy(1001, Chain::kOutput, *pass).ok());
  // A's slot quota (1) is spent: a second chain is kResourceExhausted.
  EXPECT_EQ(k.LoadTenantPolicy(1001, Chain::kInput, *pass).status().code(),
            StatusCode::kResourceExhausted);
  // B is refused with kUnavailable — the TX slot is busy, but nothing of
  // B's was consumed, so B may retry later (convention in tenant.h).
  EXPECT_EQ(k.LoadTenantPolicy(1002, Chain::kOutput, *pass).status().code(),
            StatusCode::kUnavailable);
  // A releases (empty program); B's retry is admitted.
  ASSERT_TRUE(k.LoadTenantPolicy(1001, Chain::kOutput, {}).ok());
  EXPECT_TRUE(k.LoadTenantPolicy(1002, Chain::kOutput, *pass).ok());
  // And A's freed quota admits the RX chain now.
  EXPECT_TRUE(k.LoadTenantPolicy(1001, Chain::kInput, *pass).ok());
}

// ---- Tenant lifecycle: RAII handle, teardown reclaim ----------------------

TEST(TenancyTest, TeardownReclaimsEverything) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  const auto pid = *k.processes().Spawn(1001, "app");
  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);

  TenantSpec spec;
  spec.ring_bytes = 2 * nic::kHotWorkingSetBytes;
  spec.overlay_slots = 1;
  auto pass = overlay::Assemble("ret 1");
  ASSERT_TRUE(pass.ok());
  {
    auto tenant = k.CreateTenant(kRootUid, 1001, spec);
    ASSERT_TRUE(tenant.ok());
    EXPECT_EQ(k.tenant_count(), 1u);
    EXPECT_EQ(k.TenantOf(1001), 1001u);
    ASSERT_TRUE(Socket::Connect(&k, pid, peer, 1000, {}).ok());
    ASSERT_TRUE(k.LoadTenantPolicy(1001, Chain::kOutput, *pass).ok());
    // Budget spent (see RingBudgetAdmission).
    EXPECT_FALSE(Socket::Connect(&k, pid, peer, 2000, {}).ok());
  }  // RAII release: connections closed, slots freed, quotas cleared

  EXPECT_EQ(k.tenant_count(), 0u);
  EXPECT_EQ(k.TenantOf(1001), kernel::kSystemTenant);
  EXPECT_EQ(k.FindTenantSpec(1001), nullptr);
  // The uid is no longer budgeted: both connections admit fine.
  EXPECT_TRUE(Socket::Connect(&k, pid, peer, 3000, {}).ok());
  EXPECT_TRUE(Socket::Connect(&k, pid, peer, 4000, {}).ok());
  // The overlay slot was freed with the tenant: a fresh tenant can hold it.
  auto again = k.CreateTenant(kRootUid, 1001, spec);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(k.LoadTenantPolicy(1001, Chain::kOutput, *pass).ok());
}

TEST(TenancyTest, CreateTenantValidation) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  EXPECT_EQ(k.CreateTenant(/*caller=*/1001, 1001, {}).status().code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(k.CreateTenant(kRootUid, 0, {}).status().code(),
            StatusCode::kInvalidArgument)
      << "root/system uid cannot be a quota'd tenant";
  auto ok = k.CreateTenant(kRootUid, 1001, {});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(k.CreateTenant(kRootUid, 1001, {}).status().code(),
            StatusCode::kAlreadyExists);
}

// ---- Declarative configuration --------------------------------------------

TEST(TenancyTest, ConfigureIsAtomic) {
  workload::TestBed bed;
  auto& k = bed.kernel();

  NicConfig bad;
  bad.top_talkers = true;
  bad.top_talker_entries = 8;
  bad.flow_cache = true;
  bad.flow_cache_entries = 0;  // invalid — must reject the WHOLE config
  const Status rejected = k.Configure(kRootUid, bad);
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  // The valid half (top_talkers) must NOT have been applied.
  EXPECT_FALSE(k.active_config().top_talkers);
  EXPECT_FALSE(k.active_config().flow_cache);

  NicConfig good = bad;
  good.flow_cache_entries = 256;
  ASSERT_TRUE(k.Configure(kRootUid, good).ok());
  EXPECT_TRUE(k.active_config().top_talkers);
  EXPECT_TRUE(k.active_config().flow_cache);
  EXPECT_EQ(k.active_config().flow_cache_entries, 256u);

  // Non-root callers are refused.
  EXPECT_EQ(k.Configure(/*caller=*/1001, good).code(),
            StatusCode::kPermissionDenied);

  // Out-of-range shard counts are named invalid, not silently clamped.
  NicConfig shards = good;
  shards.shard_queues = nic::SmartNic::kMaxShardQueues + 1;
  EXPECT_EQ(k.Configure(kRootUid, shards).code(),
            StatusCode::kInvalidArgument);
}

TEST(TenancyTest, DeprecatedShimsStillWork) {
  workload::TestBed bed;
  auto& k = bed.kernel();
  // The accreted per-feature toggles survive as shims over the same state
  // Configure manages; old callers keep working unchanged.
  EXPECT_NE(k.nic_control().EnableFlowCache(512), nullptr);
  EXPECT_NE(k.nic_control().EnableTopTalkers(8), nullptr);
  k.StartMaintenance();
  EXPECT_TRUE(k.maintenance_running());
  EXPECT_TRUE(k.EnableNat(kRootUid, net::Ipv4Address::FromOctets(10, 0, 0, 0),
                          8, net::Ipv4Address::FromOctets(203, 0, 113, 1))
                  .ok());
  // And Configure composes with shim-established state: NAT removal is the
  // documented one-shot precondition failure.
  NicConfig cfg;
  EXPECT_EQ(k.Configure(kRootUid, cfg).code(),
            StatusCode::kFailedPrecondition);
  cfg.nat = true;
  cfg.nat_prefix_len = 8;
  EXPECT_TRUE(k.Configure(kRootUid, cfg).ok());
}

// ---- Determinism: tenancy disabled == tenancy absent ----------------------

struct Trace {
  uint64_t frames = 0;
  uint64_t bytes = 0;
  Nanos final_time = 0;
  std::vector<Nanos> completions;
};

Trace RunEchoWorld(bool register_tenants) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  k.processes().AddUser(1002, "bob");
  const auto p1 = *k.processes().Spawn(1001, "app1");
  const auto p2 = *k.processes().Spawn(1002, "app2");

  std::vector<kernel::Tenant> handles;
  if (register_tenants) {
    // Registered but dormant: zero quotas (unlimited) and isolation off.
    // Gated() is false, no charge point binds, so the trajectory must be
    // bit-identical to a world that never heard of tenants.
    TenantSpec spec;
    spec.cycle_weight = 3;
    auto t1 = k.CreateTenant(kernel::kRootUid, 1001, spec);
    spec.cycle_weight = 1;
    auto t2 = k.CreateTenant(kernel::kRootUid, 1002, spec);
    handles.push_back(std::move(*t1));
    handles.push_back(std::move(*t2));
  }

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto s1 = Socket::Connect(&k, p1, peer, 1000, {});
  auto s2 = Socket::Connect(&k, p2, peer, 2000, {});

  Trace trace;
  bed.SetEgressHook([&trace](const net::Packet& p) {
    trace.completions.push_back(p.meta().completed_at);
  });
  const std::vector<uint8_t> big(1200, 0xaa);
  const std::vector<uint8_t> small(128, 0xbb);
  uint8_t scratch[2048];
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 16; ++i) {
      (void)s1->Send(big);
    }
    for (int i = 0; i < 4; ++i) {
      (void)s2->Send(small);
    }
    bed.sim().Run();
    while (s1->RecvInto(scratch).ok()) {
    }
    while (s2->RecvInto(scratch).ok()) {
    }
  }
  trace.frames = bed.egress_frames();
  trace.bytes = bed.egress_bytes();
  trace.final_time = bed.sim().Now();
  return trace;
}

TEST(TenancyTest, DormantTenancyIsBitIdentical) {
  const Trace off = RunEchoWorld(/*register_tenants=*/false);
  const Trace on = RunEchoWorld(/*register_tenants=*/true);
  EXPECT_EQ(off.frames, on.frames);
  EXPECT_EQ(off.bytes, on.bytes);
  EXPECT_EQ(off.final_time, on.final_time);
  ASSERT_EQ(off.completions.size(), on.completions.size());
  for (size_t i = 0; i < off.completions.size(); ++i) {
    ASSERT_EQ(off.completions[i], on.completions[i]) << "frame " << i;
  }
}

// ---- End-to-end: WFQ actually shapes contended service --------------------

TEST(TenancyTest, IsolationThrottlesAggressorNotVictim) {
  workload::TestBedOptions opts;
  opts.echo = true;
  // Slow the modeled pipeline (default 150 Mpps) so a 32-packet burst is
  // real contention: at 1 Mpps each packet occupies ~1us and backlogs form
  // behind each tenant's WFQ horizon.
  opts.nic.cost.nic_pipeline_pps = 1'000'000;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "victim");
  k.processes().AddUser(1002, "aggressor");
  const auto vp = *k.processes().Spawn(1001, "victim");
  const auto ap = *k.processes().Spawn(1002, "aggressor");

  TenantSpec victim_spec;
  victim_spec.cycle_weight = 3;
  TenantSpec aggressor_spec;
  aggressor_spec.cycle_weight = 1;
  auto victim = k.CreateTenant(kRootUid, 1001, victim_spec);
  auto aggressor = k.CreateTenant(kRootUid, 1002, aggressor_spec);
  ASSERT_TRUE(victim.ok() && aggressor.ok());

  NicConfig cfg;
  cfg.tenant_isolation = true;
  ASSERT_TRUE(k.Configure(kRootUid, cfg).ok());

  const auto peer = net::Ipv4Address::FromOctets(10, 0, 0, 2);
  auto vs = Socket::Connect(&k, vp, peer, 1000, {});
  auto as = Socket::Connect(&k, ap, peer, 2000, {});
  ASSERT_TRUE(vs.ok() && as.ok());

  const std::vector<uint8_t> payload(1200, 0xaa);
  uint8_t scratch[2048];
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 32; ++i) {
      (void)as->Send(payload);  // the flood
    }
    for (int i = 0; i < 4; ++i) {
      (void)vs->Send(payload);  // the victim's trickle
    }
    bed.sim().Run();
    while (vs->RecvInto(scratch).ok()) {
    }
    while (as->RecvInto(scratch).ok()) {
    }
  }

  // The flood throttles behind its own horizon; the lightly-loaded victim
  // barely waits even though it shares every pipeline.
  const uint64_t aggressor_wait = bed.nic().tenants().throttled_ns(1002);
  const uint64_t victim_wait = bed.nic().tenants().throttled_ns(1001);
  EXPECT_GT(aggressor_wait, 0u);
  EXPECT_LT(victim_wait * 4, aggressor_wait)
      << "victim waited " << victim_wait << "ns vs aggressor "
      << aggressor_wait << "ns";
}

}  // namespace
}  // namespace norman
