#include "src/dataplane/filter_engine.h"

#include <gtest/gtest.h>

#include "src/overlay/verifier.h"
#include "tests/test_util.h"

namespace norman::dataplane {
namespace {

using net::Direction;
using net::IpProto;
using net::Ipv4Address;
using overlay::ConnMetadata;
using test::MakeTcpContext;
using test::MakeUdpContext;

nic::Verdict RunFilter(FilterEngine& engine, test::ContextBundle& bundle) {
  return engine.Process(bundle.packet, bundle.ctx).verdict;
}

TEST(FilterEngineTest, EmptyChainUsesDefaultPolicy) {
  FilterEngine accept(FilterAction::kAccept);
  FilterEngine drop(FilterAction::kDrop);
  auto pkt = MakeUdpContext(1000, 2000, Direction::kTx);
  EXPECT_EQ(RunFilter(accept, *pkt), nic::Verdict::kAccept);
  EXPECT_EQ(RunFilter(drop, *pkt), nic::Verdict::kDrop);
  EXPECT_EQ(accept.default_hits(), 1u);
}

TEST(FilterEngineTest, DstPortDropRule) {
  FilterEngine engine;
  FilterRule rule;
  rule.proto = IpProto::kUdp;
  rule.dst_port = PortRange{53, 53};
  rule.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(rule).ok());

  auto dns = MakeUdpContext(1000, 53, Direction::kTx);
  auto web = MakeUdpContext(1000, 80, Direction::kTx);
  EXPECT_EQ(RunFilter(engine, *dns), nic::Verdict::kDrop);
  EXPECT_EQ(RunFilter(engine, *web), nic::Verdict::kAccept);
  EXPECT_EQ(engine.hit_counts()[0], 1u);
  EXPECT_EQ(engine.default_hits(), 1u);
}

TEST(FilterEngineTest, FirstMatchWins) {
  FilterEngine engine;
  FilterRule accept_dns;
  accept_dns.dst_port = PortRange{53, 53};
  accept_dns.action = FilterAction::kAccept;
  FilterRule drop_all_udp;
  drop_all_udp.proto = IpProto::kUdp;
  drop_all_udp.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(accept_dns).ok());
  ASSERT_TRUE(engine.AppendRule(drop_all_udp).ok());

  auto dns = MakeUdpContext(1000, 53, Direction::kTx);
  auto other = MakeUdpContext(1000, 54, Direction::kTx);
  EXPECT_EQ(RunFilter(engine, *dns), nic::Verdict::kAccept);
  EXPECT_EQ(RunFilter(engine, *other), nic::Verdict::kDrop);
  EXPECT_EQ(engine.hit_counts()[0], 1u);
  EXPECT_EQ(engine.hit_counts()[1], 1u);
}

TEST(FilterEngineTest, OwnerUidMatch) {
  // §2 "Partitioning Ports": only Bob (uid 1001) may use port 5432.
  FilterEngine engine;
  FilterRule allow_bob;
  allow_bob.dst_port = PortRange{5432, 5432};
  allow_bob.owner_uid = 1001;
  allow_bob.action = FilterAction::kAccept;
  FilterRule deny_5432;
  deny_5432.dst_port = PortRange{5432, 5432};
  deny_5432.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(allow_bob).ok());
  ASSERT_TRUE(engine.AppendRule(deny_5432).ok());

  auto bob = MakeUdpContext(40000, 5432, Direction::kTx,
                            ConnMetadata{1, 1001, 200, 1, 7});
  auto charlie = MakeUdpContext(40001, 5432, Direction::kTx,
                                ConnMetadata{2, 1002, 201, 1, 8});
  auto bob_other = MakeUdpContext(40002, 80, Direction::kTx,
                                  ConnMetadata{1, 1001, 200, 1, 7});
  EXPECT_EQ(RunFilter(engine, *bob), nic::Verdict::kAccept);
  EXPECT_EQ(RunFilter(engine, *charlie), nic::Verdict::kDrop);
  EXPECT_EQ(RunFilter(engine, *bob_other), nic::Verdict::kAccept);  // default
}

TEST(FilterEngineTest, OwnerCommMatch) {
  // cmd-owner: only processes named "postgres" (comm id 7) on 5432.
  FilterEngine engine;
  FilterRule allow_pg;
  allow_pg.dst_port = PortRange{5432, 5432};
  allow_pg.owner_comm = 7;
  allow_pg.action = FilterAction::kAccept;
  FilterRule deny;
  deny.dst_port = PortRange{5432, 5432};
  deny.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(allow_pg).ok());
  ASSERT_TRUE(engine.AppendRule(deny).ok());

  auto pg = MakeUdpContext(1, 5432, Direction::kTx,
                           ConnMetadata{1, 1001, 200, 1, /*comm=*/7});
  auto rogue = MakeUdpContext(2, 5432, Direction::kTx,
                              ConnMetadata{2, 1001, 201, 1, /*comm=*/9});
  EXPECT_EQ(RunFilter(engine, *pg), nic::Verdict::kAccept);
  EXPECT_EQ(RunFilter(engine, *rogue), nic::Verdict::kDrop);
}

TEST(FilterEngineTest, DirectionScopedRules) {
  FilterEngine engine;
  FilterRule rx_only_drop;
  rx_only_drop.direction = Direction::kRx;
  rx_only_drop.dst_port = PortRange{9999, 9999};
  rx_only_drop.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(rx_only_drop).ok());

  auto tx = MakeUdpContext(1, 9999, Direction::kTx);
  auto rx = MakeUdpContext(1, 9999, Direction::kRx);
  EXPECT_EQ(RunFilter(engine, *tx), nic::Verdict::kAccept);
  EXPECT_EQ(RunFilter(engine, *rx), nic::Verdict::kDrop);
}

TEST(FilterEngineTest, PrefixMatch) {
  FilterEngine engine;
  FilterRule drop_subnet;
  drop_subnet.src_ip = Ipv4Address::FromOctets(10, 0, 0, 0);
  drop_subnet.src_ip_prefix = 24;
  drop_subnet.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(drop_subnet).ok());

  // test_util frames use 10.0.0.x sources.
  auto in_subnet = MakeUdpContext(1, 2, Direction::kTx);
  EXPECT_EQ(RunFilter(engine, *in_subnet), nic::Verdict::kDrop);

  FilterEngine engine2;
  FilterRule drop_other;
  drop_other.src_ip = Ipv4Address::FromOctets(192, 168, 0, 0);
  drop_other.src_ip_prefix = 16;
  drop_other.action = FilterAction::kDrop;
  ASSERT_TRUE(engine2.AppendRule(drop_other).ok());
  EXPECT_EQ(RunFilter(engine2, *in_subnet), nic::Verdict::kAccept);
}

TEST(FilterEngineTest, PortRangeMatch) {
  FilterEngine engine;
  FilterRule rule;
  rule.dst_port = PortRange{1000, 2000};
  rule.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(rule).ok());

  auto below = MakeUdpContext(1, 999, Direction::kTx);
  auto low = MakeUdpContext(1, 1000, Direction::kTx);
  auto mid = MakeUdpContext(1, 1500, Direction::kTx);
  auto high = MakeUdpContext(1, 2000, Direction::kTx);
  auto above = MakeUdpContext(1, 2001, Direction::kTx);
  EXPECT_EQ(RunFilter(engine, *below), nic::Verdict::kAccept);
  EXPECT_EQ(RunFilter(engine, *low), nic::Verdict::kDrop);
  EXPECT_EQ(RunFilter(engine, *mid), nic::Verdict::kDrop);
  EXPECT_EQ(RunFilter(engine, *high), nic::Verdict::kDrop);
  EXPECT_EQ(RunFilter(engine, *above), nic::Verdict::kAccept);
}

TEST(FilterEngineTest, ProtocolRuleDoesNotMatchNonIp) {
  FilterEngine engine;
  FilterRule rule;
  rule.proto = IpProto::kUdp;
  rule.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(rule).ok());

  // ARP frame: proto rules must not match.
  auto arp_frame = net::BuildArpRequest(net::MacAddress::ForHost(1),
                                        test::kLocalIp, test::kRemoteIp);
  net::Packet packet(arp_frame);
  auto parsed = *net::ParseFrame(packet.bytes());
  overlay::PacketContext ctx;
  ctx.frame = packet.bytes();
  ctx.parsed = &parsed;
  ctx.direction = Direction::kTx;
  EXPECT_EQ(engine.Process(packet, ctx).verdict, nic::Verdict::kAccept);
}

TEST(FilterEngineTest, SoftwareFallbackAction) {
  FilterEngine engine;
  FilterRule rule;
  rule.owner_cgroup = 5;
  rule.action = FilterAction::kSoftwareFallback;
  ASSERT_TRUE(engine.AppendRule(rule).ok());
  auto pkt = MakeUdpContext(1, 2, Direction::kTx,
                            ConnMetadata{1, 1000, 100, /*cgroup=*/5, 0});
  EXPECT_EQ(RunFilter(engine, *pkt), nic::Verdict::kSoftwareFallback);
}

TEST(FilterEngineTest, DeleteAndInsertMaintainOrder) {
  FilterEngine engine;
  FilterRule r1;
  r1.dst_port = PortRange{1, 1};
  r1.action = FilterAction::kDrop;
  FilterRule r2;
  r2.dst_port = PortRange{2, 2};
  r2.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(r1).ok());
  ASSERT_TRUE(engine.AppendRule(r2).ok());
  ASSERT_TRUE(engine.DeleteRule(0).ok());
  EXPECT_EQ(engine.rules().size(), 1u);

  auto pkt1 = MakeUdpContext(9, 1, Direction::kTx);
  auto pkt2 = MakeUdpContext(9, 2, Direction::kTx);
  EXPECT_EQ(RunFilter(engine, *pkt1), nic::Verdict::kAccept);
  EXPECT_EQ(RunFilter(engine, *pkt2), nic::Verdict::kDrop);

  FilterRule r3;
  r3.dst_port = PortRange{1, 1};
  r3.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.InsertRule(0, r3).ok());
  EXPECT_EQ(RunFilter(engine, *pkt1), nic::Verdict::kDrop);
  EXPECT_FALSE(engine.DeleteRule(99).ok());
  EXPECT_FALSE(engine.InsertRule(99, r3).ok());
}

TEST(FilterEngineTest, FlushRestoresDefault) {
  FilterEngine engine;
  FilterRule rule;
  rule.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(rule).ok());
  auto pkt = MakeUdpContext(1, 2, Direction::kTx);
  EXPECT_EQ(RunFilter(engine, *pkt), nic::Verdict::kDrop);
  engine.Flush();
  EXPECT_EQ(RunFilter(engine, *pkt), nic::Verdict::kAccept);
  EXPECT_TRUE(engine.rules().empty());
}

TEST(FilterEngineTest, CompiledProgramAlwaysVerifies) {
  FilterEngine engine;
  for (int i = 0; i < 10; ++i) {
    FilterRule rule;
    rule.proto = IpProto::kTcp;
    rule.src_ip = Ipv4Address::FromOctets(10, 0, 0, static_cast<uint8_t>(i));
    rule.dst_port = PortRange{80, 443};
    rule.owner_uid = 1000u + i;
    rule.action = i % 2 == 0 ? FilterAction::kDrop : FilterAction::kAccept;
    ASSERT_TRUE(engine.AppendRule(rule).ok());
    EXPECT_TRUE(overlay::VerifyProgram(engine.compiled()).ok());
  }
}

TEST(FilterEngineTest, ChainCapacityIsEnforced) {
  FilterEngine engine;
  FilterRule fat;  // many predicates -> many instructions
  fat.direction = Direction::kTx;
  fat.proto = IpProto::kTcp;
  fat.src_ip = Ipv4Address::FromOctets(10, 1, 2, 3);
  fat.dst_ip = Ipv4Address::FromOctets(10, 4, 5, 6);
  fat.src_port = PortRange{10, 20};
  fat.dst_port = PortRange{30, 40};
  fat.owner_uid = 1;
  fat.owner_pid = 2;
  fat.owner_comm = 3;
  fat.owner_cgroup = 4;
  fat.action = FilterAction::kDrop;

  Status last = OkStatus();
  size_t added = 0;
  for (int i = 0; i < 100; ++i) {
    auto r = engine.AppendRule(fat);
    if (!r.ok()) {
      last = r.status();
      break;
    }
    ++added;
  }
  EXPECT_EQ(last.code(), StatusCode::kResourceExhausted);
  EXPECT_GT(added, 5u);
  // Engine still functional after the failed append.
  auto pkt = MakeUdpContext(1, 2, Direction::kTx);
  EXPECT_EQ(RunFilter(engine, *pkt), nic::Verdict::kAccept);
}

TEST(FilterEngineTest, TcpFlagsVisibleToCompiledChain) {
  // Sanity: TCP packets flow through the same compiled matcher.
  FilterEngine engine;
  FilterRule rule;
  rule.proto = IpProto::kTcp;
  rule.dst_port = PortRange{22, 22};
  rule.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(rule).ok());
  auto ssh = MakeTcpContext(50000, 22, net::TcpFlags::kSyn, Direction::kTx);
  auto web = MakeTcpContext(50000, 80, net::TcpFlags::kSyn, Direction::kTx);
  EXPECT_EQ(RunFilter(engine, *ssh), nic::Verdict::kDrop);
  EXPECT_EQ(RunFilter(engine, *web), nic::Verdict::kAccept);
}

TEST(FilterEngineTest, InstructionCountReportedForCostCharging) {
  FilterEngine engine;
  FilterRule rule;
  rule.dst_port = PortRange{53, 53};
  rule.action = FilterAction::kDrop;
  ASSERT_TRUE(engine.AppendRule(rule).ok());
  auto pkt = MakeUdpContext(1, 53, Direction::kTx);
  auto result = engine.Process(pkt->packet, pkt->ctx);
  EXPECT_GT(result.overlay_instructions, 0u);
}

}  // namespace
}  // namespace norman::dataplane
