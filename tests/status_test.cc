#include "src/common/status.h"

#include <gtest/gtest.h>

namespace norman {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("flow 42");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "flow 42");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: flow 42");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(PermissionDeniedError("").code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(ResourceExhaustedError("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPreconditionError("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnimplementedError("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("").code(), StatusCode::kInternal);
  EXPECT_EQ(UnavailableError("").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(OkStatus(), Status());
  EXPECT_EQ(NotFoundError("x"), NotFoundError("x"));
  EXPECT_NE(NotFoundError("x"), NotFoundError("y"));
  EXPECT_NE(NotFoundError("x"), InternalError("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.status(), OkStatus());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = InternalError("boom");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 5);
}

StatusOr<int> ParsePositive(int x) {
  if (x <= 0) {
    return InvalidArgumentError("not positive");
  }
  return x;
}

Status UsesReturnIfError(int x) {
  NORMAN_RETURN_IF_ERROR(ParsePositive(x).status());
  return OkStatus();
}

StatusOr<int> UsesAssignOrReturn(int x) {
  NORMAN_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v + 1;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  auto ok = UsesAssignOrReturn(1);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(UsesAssignOrReturn(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "RESOURCE_EXHAUSTED");
}

}  // namespace
}  // namespace norman
