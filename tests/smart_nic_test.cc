// End-to-end tests of the SmartNic device: TX path through doorbell ->
// DMA -> pipeline -> scheduler -> wire, RX path wire -> flow match -> ring,
// control-plane privilege, overlay slots, and notification delivery.
#include "src/nic/smart_nic.h"

#include <gtest/gtest.h>

#include "src/net/packet_builder.h"
#include "src/nic/fifo_scheduler.h"

namespace norman::nic {
namespace {

using net::ConnectionId;
using net::Direction;
using net::FiveTuple;
using net::FrameEndpoints;
using net::IpProto;
using net::Ipv4Address;
using net::MacAddress;
using net::Packet;
using net::PacketPtr;

constexpr auto kLocalIp = Ipv4Address::FromOctets(10, 0, 0, 1);
constexpr auto kRemoteIp = Ipv4Address::FromOctets(10, 0, 0, 2);

class SmartNicTest : public ::testing::Test {
 protected:
  SmartNicTest() : nic_(&sim_, SmartNic::Options{}) {
    cp_ = nic_.TakeControlPlane();
    nic_.SetWireSink([this](PacketPtr p) { wire_out_.push_back(std::move(p)); });
    cp_->SetFallbackSink([this](PacketPtr p, Direction d) {
      fallback_.emplace_back(std::move(p), d);
    });
  }

  FlowEntry MakeFlow(ConnectionId conn, uint16_t src_port,
                     uint32_t pid = 100) {
    FlowEntry e;
    e.conn_id = conn;
    e.tuple = FiveTuple{kLocalIp, kRemoteIp, src_port, 80, IpProto::kUdp};
    e.owner = overlay::ConnMetadata{conn, 1000, pid, 1};
    e.comm = "app";
    e.tx_ring_bytes = kHotWorkingSetBytes;
    e.rx_ring_bytes = kHotWorkingSetBytes;
    return e;
  }

  PacketPtr MakeTxPacket(uint16_t src_port, size_t payload = 64) {
    FrameEndpoints ep{MacAddress::ForHost(1), MacAddress::ForHost(2),
                      kLocalIp, kRemoteIp};
    return net::MakePacket(
        BuildUdpFrame(ep, src_port, 80, std::vector<uint8_t>(payload, 0xaa)));
  }

  PacketPtr MakeRxPacket(uint16_t dst_port, size_t payload = 64) {
    FrameEndpoints ep{MacAddress::ForHost(2), MacAddress::ForHost(1),
                      kRemoteIp, kLocalIp};
    return net::MakePacket(
        BuildUdpFrame(ep, 80, dst_port, std::vector<uint8_t>(payload, 0xbb)));
  }

  // Pushes a packet into the connection's TX ring and rings the doorbell.
  void SendOne(ConnectionId conn, uint16_t src_port) {
    RingPair* rings = cp_->GetRings(conn);
    ASSERT_NE(rings, nullptr);
    ASSERT_TRUE(rings->tx().TryPush(MakeTxPacket(src_port)));
    ASSERT_TRUE(nic_.Doorbell(conn, sim_.Now()).ok());
  }

  sim::Simulator sim_;
  SmartNic nic_;
  std::unique_ptr<SmartNic::ControlPlane> cp_;
  std::vector<PacketPtr> wire_out_;
  std::vector<std::pair<PacketPtr, Direction>> fallback_;
};

TEST_F(SmartNicTest, ControlPlaneIsSingleton) {
  EXPECT_EQ(nic_.TakeControlPlane(), nullptr);
}

TEST_F(SmartNicTest, TxPathReachesWire) {
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(1, 1234)).ok());
  SendOne(1, 1234);
  sim_.Run();
  ASSERT_EQ(wire_out_.size(), 1u);
  EXPECT_EQ(nic_.stats().tx_seen(), telemetry::HotCount(1));
  EXPECT_EQ(nic_.stats().tx_accepted(), telemetry::HotCount(1));
  EXPECT_GT(wire_out_[0]->meta().completed_at, 0);
  EXPECT_EQ(wire_out_[0]->meta().connection, 1u);
}

TEST_F(SmartNicTest, DoorbellForUnknownConnectionFails) {
  EXPECT_EQ(nic_.Doorbell(99, 0).code(), StatusCode::kNotFound);
}

TEST_F(SmartNicTest, TxLatencyIncludesDmaPipelineWire) {
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(1, 1234)).ok());
  SendOne(1, 1234);
  sim_.Run();
  ASSERT_EQ(wire_out_.size(), 1u);
  const auto& cm = nic_.cost();
  const auto& m = wire_out_[0]->meta();
  // First packet: cold DDIO miss.
  const Nanos expected = cm.DmaCost(wire_out_[0]->size(), false) +
                         cm.NicPipelineOccupancy() +
                         cm.WireCost(wire_out_[0]->size());
  EXPECT_EQ(m.completed_at - m.nic_arrival, expected);
}

TEST_F(SmartNicTest, SecondPacketHitsDdio) {
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(1, 1234)).ok());
  SendOne(1, 1234);
  sim_.Run();
  const uint64_t misses_after_first = nic_.ddio().misses();
  SendOne(1, 1234);
  sim_.Run();
  EXPECT_EQ(nic_.ddio().misses(), misses_after_first);
  EXPECT_GE(nic_.ddio().hits(), 1u);
}

TEST_F(SmartNicTest, MultiplePacketsSerializeOnWire) {
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(1, 1234)).ok());
  RingPair* rings = cp_->GetRings(1);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rings->tx().TryPush(MakeTxPacket(1234)));
  }
  ASSERT_TRUE(nic_.Doorbell(1, 0).ok());
  sim_.Run();
  ASSERT_EQ(wire_out_.size(), 10u);
  // Wire completions are strictly increasing and at least wire-time apart.
  for (size_t i = 1; i < wire_out_.size(); ++i) {
    const Nanos gap = wire_out_[i]->meta().completed_at -
                      wire_out_[i - 1]->meta().completed_at;
    EXPECT_GE(gap, nic_.cost().WireCost(wire_out_[i]->size()));
  }
}

TEST_F(SmartNicTest, RxPathDeliversToRing) {
  FlowEntry flow = MakeFlow(1, 5555);
  flow.notify_rx = false;
  ASSERT_TRUE(cp_->InstallFlow(flow).ok());
  nic_.DeliverFromWire(MakeRxPacket(5555), 0);
  sim_.Run();
  RingPair* rings = cp_->GetRings(1);
  EXPECT_EQ(rings->rx().size(), 1u);
  auto pkt = rings->rx().TryPop();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ((*pkt)->meta().connection, 1u);
  EXPECT_EQ(nic_.stats().rx_accepted(), telemetry::HotCount(1));
}

TEST_F(SmartNicTest, RxUnmatchedGoesToFallback) {
  nic_.DeliverFromWire(MakeRxPacket(4444), 0);  // no flow installed
  sim_.Run();
  EXPECT_EQ(nic_.stats().rx_unmatched(), telemetry::HotCount(1));
  ASSERT_EQ(fallback_.size(), 1u);
  EXPECT_EQ(fallback_[0].second, Direction::kRx);
}

TEST_F(SmartNicTest, RxRingOverflowDropsAndCounts) {
  SmartNic::Options opts;
  opts.ring_entries = 4;
  sim::Simulator sim;
  SmartNic nic(&sim, opts);
  auto cp = nic.TakeControlPlane();
  ASSERT_TRUE(cp->InstallFlow(MakeFlow(1, 5555)).ok());
  for (int i = 0; i < 6; ++i) {
    nic.DeliverFromWire(MakeRxPacket(5555), sim.Now());
    sim.Run();
  }
  EXPECT_EQ(cp->GetRings(1)->rx().size(), 4u);
  EXPECT_EQ(nic.stats().rx_ring_overflow(), 2u);
}

TEST_F(SmartNicTest, RxNotificationPosted) {
  FlowEntry flow = MakeFlow(1, 5555, /*pid=*/777);
  flow.notify_rx = true;
  ASSERT_TRUE(cp_->InstallFlow(flow).ok());
  NotificationQueue* q = cp_->RegisterNotificationQueue(777);
  nic_.DeliverFromWire(MakeRxPacket(5555), 0);
  sim_.Run();
  auto n = q->Poll();
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->kind, NotificationKind::kRxData);
  EXPECT_EQ(n->conn_id, 1u);
}

TEST_F(SmartNicTest, TxDrainNotificationPosted) {
  FlowEntry flow = MakeFlow(1, 1234, /*pid=*/888);
  flow.notify_tx_drain = true;
  ASSERT_TRUE(cp_->InstallFlow(flow).ok());
  NotificationQueue* q = cp_->RegisterNotificationQueue(888);
  SendOne(1, 1234);
  sim_.Run();
  auto n = q->Poll();
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->kind, NotificationKind::kTxDrained);
}

TEST_F(SmartNicTest, DropStageDropsTx) {
  class DropAll : public PipelineStage {
   public:
    std::string_view name() const override { return "drop_all"; }
    StageResult Process(Packet&, const overlay::PacketContext&) override {
      return StageResult{Verdict::kDrop, 0};
    }
  };
  DropAll stage;
  cp_->AddTxStage(&stage);
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(1, 1234)).ok());
  SendOne(1, 1234);
  sim_.Run();
  EXPECT_TRUE(wire_out_.empty());
  EXPECT_EQ(nic_.stats().tx_dropped(), 1u);
  EXPECT_EQ(nic_.stats().tx_accepted(), 0u);
}

TEST_F(SmartNicTest, StagesSeeOwnerMetadataOnTx) {
  // The crux of KOPI: a stage matching on owner_uid, which only works
  // because the kernel stamped the flow table.
  class CaptureUid : public PipelineStage {
   public:
    std::string_view name() const override { return "capture"; }
    StageResult Process(Packet&, const overlay::PacketContext& ctx) override {
      seen_uid = ctx.conn.owner_uid;
      seen_pid = ctx.conn.owner_pid;
      return {};
    }
    uint32_t seen_uid = 0;
    uint32_t seen_pid = 0;
  };
  CaptureUid stage;
  cp_->AddTxStage(&stage);
  FlowEntry flow = MakeFlow(1, 1234, /*pid=*/4242);
  ASSERT_TRUE(cp_->InstallFlow(flow).ok());
  SendOne(1, 1234);
  sim_.Run();
  EXPECT_EQ(stage.seen_uid, 1000u);
  EXPECT_EQ(stage.seen_pid, 4242u);
}

TEST_F(SmartNicTest, FallbackVerdictDivertsTx) {
  class DivertAll : public PipelineStage {
   public:
    std::string_view name() const override { return "divert"; }
    StageResult Process(Packet&, const overlay::PacketContext&) override {
      return StageResult{Verdict::kSoftwareFallback, 0};
    }
  };
  DivertAll stage;
  cp_->AddTxStage(&stage);
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(1, 1234)).ok());
  SendOne(1, 1234);
  sim_.Run();
  EXPECT_TRUE(wire_out_.empty());
  ASSERT_EQ(fallback_.size(), 1u);
  EXPECT_TRUE(fallback_[0].first->meta().software_fallback);
  EXPECT_EQ(nic_.stats().tx_fallback(), telemetry::HotCount(1));
}

TEST_F(SmartNicTest, OverlaySlotLoadAndGenerations) {
  overlay::Program prog{overlay::Instruction::RetImm(1)};
  auto t = cp_->LoadOverlay(0, prog);
  ASSERT_TRUE(t.ok());
  EXPECT_GT(*t, 0);
  EXPECT_EQ(cp_->overlay_generation(0), 1u);
  ASSERT_NE(cp_->OverlaySlot(0), nullptr);
  EXPECT_EQ(cp_->OverlaySlot(0)->size(), 1u);

  // Larger program costs more to load.
  overlay::Program big(100, overlay::Instruction::Ldi(1, 0));
  big.push_back(overlay::Instruction::RetImm(0));
  auto t2 = cp_->LoadOverlay(1, big);
  ASSERT_TRUE(t2.ok());
  EXPECT_GT(*t2, *t);
}

TEST_F(SmartNicTest, OverlayLoadRejectsInvalidProgram) {
  overlay::Program bad{overlay::Instruction::Ldi(1, 0)};  // falls off end
  EXPECT_FALSE(cp_->LoadOverlay(0, bad).ok());
  EXPECT_EQ(cp_->OverlaySlot(0), nullptr);
}

TEST_F(SmartNicTest, OverlayLoadRejectsBadSlot) {
  overlay::Program prog{overlay::Instruction::RetImm(1)};
  EXPECT_FALSE(cp_->LoadOverlay(kNumOverlaySlots, prog).ok());
}

TEST_F(SmartNicTest, BitstreamReloadWipesOverlaysAndIsSlow) {
  overlay::Program prog{overlay::Instruction::RetImm(1)};
  ASSERT_TRUE(cp_->LoadOverlay(0, prog).ok());
  const Nanos reload = cp_->ReloadBitstream();
  EXPECT_GE(reload, 1 * kSecond);
  EXPECT_EQ(cp_->OverlaySlot(0), nullptr);
}

TEST_F(SmartNicTest, FlowInstallChargesSramAndRemoveRefunds) {
  const uint64_t before = cp_->sram().used();
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(1, 1234)).ok());
  EXPECT_GT(cp_->sram().used(), before);
  ASSERT_TRUE(cp_->RemoveFlow(1).ok());
  EXPECT_EQ(cp_->sram().used(), before);
}

TEST_F(SmartNicTest, SchedulerSwapRequiresEmptyBacklog) {
  EXPECT_TRUE(cp_->SetScheduler(std::make_unique<FifoScheduler>()).ok());
  EXPECT_FALSE(cp_->SetScheduler(nullptr).ok());
}

TEST_F(SmartNicTest, RemoveFlowInvalidatesDdio) {
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(1, 1234)).ok());
  SendOne(1, 1234);
  sim_.Run();
  ASSERT_TRUE(cp_->RemoveFlow(1).ok());
  // Reinstall and send: must miss again (residency was invalidated).
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(1, 1234)).ok());
  const uint64_t misses_before = nic_.ddio().misses();
  SendOne(1, 1234);
  sim_.Run();
  EXPECT_EQ(nic_.ddio().misses(), misses_before + 1);
}

TEST_F(SmartNicTest, RxQueueOverrideBeatsRss) {
  // Flow-table rx_queue pins a connection to a queue ("virtual interface"
  // partitioning); flows without a pin spread via RSS.
  FlowEntry pinned = MakeFlow(1, 5555);
  pinned.rx_queue = 5;
  ASSERT_TRUE(cp_->InstallFlow(pinned).ok());
  nic_.DeliverFromWire(MakeRxPacket(5555), 0);
  sim_.Run();
  auto pkt = cp_->GetRings(1)->rx().TryPop();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ((*pkt)->meta().rx_queue, 5);

  FlowEntry spread = MakeFlow(2, 6666);
  spread.rx_queue = 0;  // RSS decides
  ASSERT_TRUE(cp_->InstallFlow(spread).ok());
  nic_.DeliverFromWire(MakeRxPacket(6666), sim_.Now());
  sim_.Run();
  auto pkt2 = cp_->GetRings(2)->rx().TryPop();
  ASSERT_TRUE(pkt2.has_value());
  const net::FiveTuple inbound{kRemoteIp, kLocalIp, 80, 6666,
                               net::IpProto::kUdp};
  EXPECT_EQ((*pkt2)->meta().rx_queue, cp_->rss().Steer(inbound));
}

TEST_F(SmartNicTest, MmioDoorbellWindowMapsToConnection) {
  ASSERT_TRUE(cp_->InstallFlow(MakeFlow(5, 1234)).ok());
  DoorbellWindow win = cp_->MapDoorbell(5);
  ASSERT_TRUE(win.Write(kRegTxHead, 42).ok());
  EXPECT_EQ(cp_->mmio().Read(DoorbellAddr(5, kRegTxHead)), 42u);
}

}  // namespace
}  // namespace norman::nic
