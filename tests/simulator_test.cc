#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace norman::sim {
namespace {

TEST(SimulatorTest, StartsAtZeroIdle) {
  Simulator s;
  EXPECT_EQ(s.Now(), 0);
  EXPECT_TRUE(s.Idle());
  EXPECT_FALSE(s.Step());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
  EXPECT_EQ(s.events_processed(), 3u);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(5, [&] { order.push_back(1); });
  s.ScheduleAt(5, [&] { order.push_back(2); });
  s.ScheduleAt(5, [&] { order.push_back(3); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) {
      s.ScheduleAfter(10, chain);
    }
  };
  s.ScheduleAfter(10, chain);
  s.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.Now(), 50);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(100, [&] { ++fired; });
  s.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 50);       // advanced to deadline
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenQueueEmpty) {
  Simulator s;
  s.RunUntil(1000);
  EXPECT_EQ(s.Now(), 1000);
}

TEST(SimulatorTest, ScheduleAtBoundaryIncluded) {
  Simulator s;
  bool fired = false;
  s.ScheduleAt(50, [&] { fired = true; });
  s.RunUntil(50);
  EXPECT_TRUE(fired);
}

TEST(SimulatorDeathTest, SchedulingInPastAborts) {
  Simulator s;
  s.ScheduleAt(100, [] {});
  s.Run();
  EXPECT_DEATH(s.ScheduleAt(50, [] {}), "cannot schedule into the past");
}

TEST(SimulatorTest, ZeroDelaySelfScheduleMakesProgress) {
  Simulator s;
  int count = 0;
  std::function<void()> f = [&] {
    if (++count < 100) {
      s.ScheduleAfter(0, f);
    }
  };
  s.ScheduleAfter(0, f);
  s.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.Now(), 0);
}


TEST(SimulatorTest, EventNodesRecycleThroughFreeList) {
  Simulator s;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 10; ++i) {
      s.ScheduleAfter(i + 1, [] {});
    }
    s.Run();
  }
  const auto& pool = s.event_pool();
  EXPECT_EQ(pool.acquisitions(), 40u);
  // The first round carves fresh slab nodes; later rounds reuse them.
  EXPECT_GE(pool.hits, 30u);
  EXPECT_EQ(pool.outstanding, 0u);
  EXPECT_LE(pool.high_water, 10u);
}

TEST(SimulatorTest, HasEventAtOrBefore) {
  Simulator s;
  EXPECT_FALSE(s.HasEventAtOrBefore(1000));
  s.ScheduleAt(500, [] {});
  EXPECT_TRUE(s.HasEventAtOrBefore(500));
  EXPECT_TRUE(s.HasEventAtOrBefore(1000));
  EXPECT_FALSE(s.HasEventAtOrBefore(499));
  s.Run();
  EXPECT_FALSE(s.HasEventAtOrBefore(1000));
}

TEST(SimulatorBatchTest, StepBatchPopsOnlyHorizonSharers) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(10, [&] { order.push_back(2); });
  s.ScheduleAt(20, [&] { order.push_back(3); });
  // Both t=10 events dispatch in one pass; t=20 must wait for the next.
  EXPECT_EQ(s.StepBatch(64), 2u);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.Now(), 10);
  EXPECT_EQ(s.StepBatch(64), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 20);
  EXPECT_EQ(s.StepBatch(64), 0u);
}

TEST(SimulatorBatchTest, MaxNCapsOnePass) {
  Simulator s;
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    s.ScheduleAt(7, [&] { ++fired; });
  }
  EXPECT_EQ(s.StepBatch(2), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.pending_events(), 3u);
  EXPECT_EQ(s.StepBatch(64), 3u);
  EXPECT_EQ(fired, 5);
}

TEST(SimulatorBatchTest, SameTimeEventScheduledInsideBatchRunsAfterIt) {
  // An event scheduled at the current horizon from inside a batched
  // callback has a higher seq than everything buffered: it must run in a
  // later pass at the same time, exactly as per-event stepping orders it.
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(10, [&] {
    order.push_back(1);
    s.ScheduleAt(10, [&] { order.push_back(9); });
  });
  s.ScheduleAt(10, [&] { order.push_back(2); });
  EXPECT_EQ(s.StepBatch(64), 2u);  // the late arrival is NOT in this pass
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.StepBatch(64), 1u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 9}));
  EXPECT_EQ(s.Now(), 10);
}

TEST(SimulatorBatchTest, QueueObserversSeeUndispatchedBatchSiblings) {
  // While batch element i runs, elements i+1..n-1 are out of the heap but
  // not yet dispatched; Idle/pending_events/HasEventAtOrBefore must still
  // count them or device loops behave differently at different batch sizes.
  Simulator s;
  bool sibling_visible = false;
  size_t pending_seen = 0;
  bool idle_seen = true;
  s.ScheduleAt(10, [&] {
    sibling_visible = s.HasEventAtOrBefore(10);
    pending_seen = s.pending_events();
    idle_seen = s.Idle();
  });
  s.ScheduleAt(10, [] {});
  s.Run();
  EXPECT_TRUE(sibling_visible);
  EXPECT_EQ(pending_seen, 1u);
  EXPECT_FALSE(idle_seen);
  // After the run everything drains for real.
  EXPECT_TRUE(s.Idle());
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_FALSE(s.HasEventAtOrBefore(1'000'000));
}

TEST(SimulatorBatchTest, RunUntilDeadlineBetweenHorizons) {
  // Deadline falls between two event timestamps: the t=10 pair runs, the
  // t=100 pair stays queued, and Now() lands exactly on the deadline.
  Simulator s;
  int fired = 0;
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(100, [&] { ++fired; });
  s.ScheduleAt(100, [&] { ++fired; });
  s.RunUntil(50);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.Now(), 50);
  EXPECT_EQ(s.pending_events(), 2u);
  s.Run();
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(s.Now(), 100);
}

TEST(SimulatorBatchTest, RunUntilDoesNotRunPastDeadlineEventsScheduledInBatch) {
  // A batched callback schedules work beyond the deadline; RunUntil must
  // leave it queued even though the scheduling happened mid-pass.
  Simulator s;
  bool late_ran = false;
  s.ScheduleAt(10, [&] { s.ScheduleAt(60, [&] { late_ran = true; }); });
  s.ScheduleAt(10, [] {});
  s.RunUntil(50);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(s.Now(), 50);
  s.Run();
  EXPECT_TRUE(late_ran);
}

TEST(SimulatorBatchTest, DispatchBatchSizeClampsAndReproducesStepping) {
  Simulator s;
  EXPECT_EQ(s.dispatch_batch(), Simulator::kDefaultDispatchBatch);
  s.set_dispatch_batch(0);
  EXPECT_EQ(s.dispatch_batch(), 1u);
  s.set_dispatch_batch(1u << 20);
  EXPECT_EQ(s.dispatch_batch(), Simulator::kMaxDispatchBatch);
  s.set_dispatch_batch(1);
  std::vector<int> order;
  s.ScheduleAt(5, [&] { order.push_back(1); });
  s.ScheduleAt(5, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SimulatorBatchTest, IdenticalScheduleAnyBatchSize) {
  // The same self-scheduling workload must produce the same dispatch order
  // and final clock at every batch size.
  auto run_world = [](uint32_t batch) {
    Simulator s;
    s.set_dispatch_batch(batch);
    std::vector<std::pair<Nanos, int>> trace;
    std::function<void(int)> tick = [&](int id) {
      trace.emplace_back(s.Now(), id);
      if (trace.size() < 64) {
        s.ScheduleAfter(id % 3 == 0 ? 0 : 5, [&tick, id] { tick(id + 1); });
      }
    };
    for (int i = 0; i < 4; ++i) {
      s.ScheduleAt(10, [&tick, i] { tick(i * 100); });
    }
    s.Run();
    return std::make_pair(trace, s.Now());
  };
  const auto golden = run_world(1);
  EXPECT_EQ(run_world(8), golden);
  EXPECT_EQ(run_world(64), golden);
}

TEST(InlineCallbackTest, SmallLambdaStaysInline) {
  int x = 0;
  InlineCallback cb([&x] { ++x; });
  EXPECT_FALSE(cb.heap_allocated());
  cb();
  EXPECT_EQ(x, 1);
}

TEST(InlineCallbackTest, LargeCaptureFallsBackToHeap) {
  std::array<uint64_t, 16> big{};
  big[15] = 7;
  int out = 0;
  InlineCallback cb([big, &out] { out = static_cast<int>(big[15]); });
  EXPECT_TRUE(cb.heap_allocated());
  cb();
  EXPECT_EQ(out, 7);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  int x = 0;
  InlineCallback a([&x] { ++x; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(x, 1);
  a = std::move(b);
  a();
  EXPECT_EQ(x, 2);
}

TEST(InlineCallbackTest, MoveOnlyCaptureWorks) {
  auto ptr = std::make_unique<int>(41);
  InlineCallback cb([p = std::move(ptr)] { ++*p; });
  cb();  // no observable effect, but must not crash or leak (ASan checks)
}

}  // namespace
}  // namespace norman::sim
