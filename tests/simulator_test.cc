#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace norman::sim {
namespace {

TEST(SimulatorTest, StartsAtZeroIdle) {
  Simulator s;
  EXPECT_EQ(s.Now(), 0);
  EXPECT_TRUE(s.Idle());
  EXPECT_FALSE(s.Step());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
  EXPECT_EQ(s.events_processed(), 3u);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(5, [&] { order.push_back(1); });
  s.ScheduleAt(5, [&] { order.push_back(2); });
  s.ScheduleAt(5, [&] { order.push_back(3); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) {
      s.ScheduleAfter(10, chain);
    }
  };
  s.ScheduleAfter(10, chain);
  s.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.Now(), 50);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(100, [&] { ++fired; });
  s.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 50);       // advanced to deadline
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenQueueEmpty) {
  Simulator s;
  s.RunUntil(1000);
  EXPECT_EQ(s.Now(), 1000);
}

TEST(SimulatorTest, ScheduleAtBoundaryIncluded) {
  Simulator s;
  bool fired = false;
  s.ScheduleAt(50, [&] { fired = true; });
  s.RunUntil(50);
  EXPECT_TRUE(fired);
}

TEST(SimulatorDeathTest, SchedulingInPastAborts) {
  Simulator s;
  s.ScheduleAt(100, [] {});
  s.Run();
  EXPECT_DEATH(s.ScheduleAt(50, [] {}), "cannot schedule into the past");
}

TEST(SimulatorTest, ZeroDelaySelfScheduleMakesProgress) {
  Simulator s;
  int count = 0;
  std::function<void()> f = [&] {
    if (++count < 100) {
      s.ScheduleAfter(0, f);
    }
  };
  s.ScheduleAfter(0, f);
  s.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.Now(), 0);
}


TEST(SimulatorTest, EventNodesRecycleThroughFreeList) {
  Simulator s;
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 10; ++i) {
      s.ScheduleAfter(i + 1, [] {});
    }
    s.Run();
  }
  const auto& pool = s.event_pool();
  EXPECT_EQ(pool.acquisitions(), 40u);
  // The first round carves fresh slab nodes; later rounds reuse them.
  EXPECT_GE(pool.hits, 30u);
  EXPECT_EQ(pool.outstanding, 0u);
  EXPECT_LE(pool.high_water, 10u);
}

TEST(SimulatorTest, HasEventAtOrBefore) {
  Simulator s;
  EXPECT_FALSE(s.HasEventAtOrBefore(1000));
  s.ScheduleAt(500, [] {});
  EXPECT_TRUE(s.HasEventAtOrBefore(500));
  EXPECT_TRUE(s.HasEventAtOrBefore(1000));
  EXPECT_FALSE(s.HasEventAtOrBefore(499));
  s.Run();
  EXPECT_FALSE(s.HasEventAtOrBefore(1000));
}

TEST(InlineCallbackTest, SmallLambdaStaysInline) {
  int x = 0;
  InlineCallback cb([&x] { ++x; });
  EXPECT_FALSE(cb.heap_allocated());
  cb();
  EXPECT_EQ(x, 1);
}

TEST(InlineCallbackTest, LargeCaptureFallsBackToHeap) {
  std::array<uint64_t, 16> big{};
  big[15] = 7;
  int out = 0;
  InlineCallback cb([big, &out] { out = static_cast<int>(big[15]); });
  EXPECT_TRUE(cb.heap_allocated());
  cb();
  EXPECT_EQ(out, 7);
}

TEST(InlineCallbackTest, MoveTransfersOwnership) {
  int x = 0;
  InlineCallback a([&x] { ++x; });
  InlineCallback b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(x, 1);
  a = std::move(b);
  a();
  EXPECT_EQ(x, 2);
}

TEST(InlineCallbackTest, MoveOnlyCaptureWorks) {
  auto ptr = std::make_unique<int>(41);
  InlineCallback cb([p = std::move(ptr)] { ++*p; });
  cb();  // no observable effect, but must not crash or leak (ASan checks)
}

}  // namespace
}  // namespace norman::sim
