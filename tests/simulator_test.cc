#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace norman::sim {
namespace {

TEST(SimulatorTest, StartsAtZeroIdle) {
  Simulator s;
  EXPECT_EQ(s.Now(), 0);
  EXPECT_TRUE(s.Idle());
  EXPECT_FALSE(s.Step());
}

TEST(SimulatorTest, EventsRunInTimeOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(30, [&] { order.push_back(3); });
  s.ScheduleAt(10, [&] { order.push_back(1); });
  s.ScheduleAt(20, [&] { order.push_back(2); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.Now(), 30);
  EXPECT_EQ(s.events_processed(), 3u);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator s;
  std::vector<int> order;
  s.ScheduleAt(5, [&] { order.push_back(1); });
  s.ScheduleAt(5, [&] { order.push_back(2); });
  s.ScheduleAt(5, [&] { order.push_back(3); });
  s.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator s;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 5) {
      s.ScheduleAfter(10, chain);
    }
  };
  s.ScheduleAfter(10, chain);
  s.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(s.Now(), 50);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.ScheduleAt(10, [&] { ++fired; });
  s.ScheduleAt(100, [&] { ++fired; });
  s.RunUntil(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.Now(), 50);       // advanced to deadline
  EXPECT_EQ(s.pending_events(), 1u);
  s.Run();
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, RunUntilAdvancesTimeWhenQueueEmpty) {
  Simulator s;
  s.RunUntil(1000);
  EXPECT_EQ(s.Now(), 1000);
}

TEST(SimulatorTest, ScheduleAtBoundaryIncluded) {
  Simulator s;
  bool fired = false;
  s.ScheduleAt(50, [&] { fired = true; });
  s.RunUntil(50);
  EXPECT_TRUE(fired);
}

TEST(SimulatorDeathTest, SchedulingInPastAborts) {
  Simulator s;
  s.ScheduleAt(100, [] {});
  s.Run();
  EXPECT_DEATH(s.ScheduleAt(50, [] {}), "cannot schedule into the past");
}

TEST(SimulatorTest, ZeroDelaySelfScheduleMakesProgress) {
  Simulator s;
  int count = 0;
  std::function<void()> f = [&] {
    if (++count < 100) {
      s.ScheduleAfter(0, f);
    }
  };
  s.ScheduleAfter(0, f);
  s.Run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(s.Now(), 0);
}

}  // namespace
}  // namespace norman::sim
