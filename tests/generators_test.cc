// Workload generator tests: emission counts, pacing, Poisson statistics,
// flooder frame contents, and bulk-sender backpressure behavior.
#include "src/workload/generators.h"

#include <gtest/gtest.h>

#include "src/workload/testbed.h"

namespace norman::workload {
namespace {

using net::Ipv4Address;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

class GeneratorsTest : public ::testing::Test {
 protected:
  GeneratorsTest() {
    bed_.kernel().processes().AddUser(1, "u");
    pid_ = *bed_.kernel().processes().Spawn(1, "gen");
  }
  Socket Connect(uint16_t port) {
    auto s = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, port, {});
    EXPECT_TRUE(s.ok());
    return std::move(*s);
  }
  workload::TestBed bed_;
  kernel::Pid pid_ = 0;
};

TEST_F(GeneratorsTest, CbrSendsExactCount) {
  auto sock = Connect(1000);
  CbrSender cbr(&bed_.sim(), &sock, 100, 10 * kMicrosecond);
  cbr.Start(0, 1 * kMillisecond);
  bed_.sim().Run();
  EXPECT_EQ(cbr.sent(), 100u);
  EXPECT_EQ(cbr.failed(), 0u);
  EXPECT_EQ(bed_.egress_frames(), 100u);
}

TEST_F(GeneratorsTest, CbrPacingOnTheWire) {
  auto sock = Connect(1001);
  CbrSender cbr(&bed_.sim(), &sock, 100, 50 * kMicrosecond);
  cbr.Start(0, 1 * kMillisecond);
  bed_.sim().Run();
  ASSERT_EQ(bed_.egress_frames(), 20u);
  for (size_t i = 1; i < bed_.egress().size(); ++i) {
    const Nanos gap = bed_.egress()[i]->meta().created_at -
                      bed_.egress()[i - 1]->meta().created_at;
    EXPECT_EQ(gap, 50 * kMicrosecond);
  }
}

TEST_F(GeneratorsTest, PoissonMeanInterarrival) {
  auto sock = Connect(1002);
  PoissonSender poisson(&bed_.sim(), &sock, 64, 20 * kMicrosecond,
                        /*seed=*/33);
  poisson.Start(0, 100 * kMillisecond);
  bed_.sim().Run();
  // Expect ~5000 sends; allow 10% statistical slack.
  EXPECT_NEAR(static_cast<double>(poisson.sent()), 5000.0, 500.0);
}

TEST_F(GeneratorsTest, PoissonIsSeedDeterministic) {
  auto s1 = Connect(1003);
  auto s2 = Connect(1004);
  PoissonSender p1(&bed_.sim(), &s1, 64, 30 * kMicrosecond, 7);
  PoissonSender p2(&bed_.sim(), &s2, 64, 30 * kMicrosecond, 7);
  p1.Start(0, 10 * kMillisecond);
  p2.Start(0, 10 * kMillisecond);
  bed_.sim().Run();
  EXPECT_EQ(p1.sent(), p2.sent());
}

TEST_F(GeneratorsTest, ArpFlooderEmitsBogusRequests) {
  auto sock = Connect(1005);
  const auto bogus = net::MacAddress::ForHost(0xbad);
  ArpFlooder flooder(&bed_.sim(), &sock, bogus,
                     Ipv4Address::FromOctets(10, 0, 0, 66),
                     100 * kMicrosecond);
  flooder.Start(0, 1 * kMillisecond);
  bed_.sim().Run();
  EXPECT_EQ(flooder.sent(), 10u);
  ASSERT_EQ(bed_.egress_frames(), 10u);
  for (const auto& frame : bed_.egress()) {
    auto parsed = net::ParseFrame(frame->bytes());
    ASSERT_TRUE(parsed && parsed->is_arp());
    EXPECT_EQ(parsed->arp->sender_mac, bogus);
    EXPECT_EQ(parsed->arp->op, net::ArpOp::kRequest);
  }
}

TEST_F(GeneratorsTest, BulkSenderBacksOffOnFullRing) {
  // A slow link: bulk sender must hit ring-full and keep retrying.
  workload::TestBedOptions opts;
  opts.nic.cost.link_rate_bps = 100'000'000;  // 100 Mbit/s
  workload::TestBed bed(opts);
  bed.kernel().processes().AddUser(1, "u");
  const auto pid = *bed.kernel().processes().Spawn(1, "bulk");
  auto sock = Socket::Connect(&bed.kernel(), pid, kPeerIp, 1006, {});
  ASSERT_TRUE(sock.ok());
  BulkSender bulk(&bed.sim(), &*sock, 1400, 5 * kMicrosecond);
  bulk.Start(0, 20 * kMillisecond);
  bed.sim().RunUntil(20 * kMillisecond);
  EXPECT_GT(bulk.sent(), 100u);
  // Offered load >> link capacity: backpressure shows up at the NIC
  // scheduler (the DMA engine drains the ring far faster than the 100Mbit
  // wire drains the scheduler), and the wire stays saturated.
  EXPECT_GT(bed.nic().stats().tx_sched_dropped(), 0u);
  EXPECT_GT(bed.nic().wire().Utilization(20 * kMillisecond), 0.95);
}

}  // namespace
}  // namespace norman::workload
