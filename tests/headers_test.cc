#include "src/net/headers.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/net/byte_io.h"

namespace norman::net {
namespace {

TEST(MacAddressTest, ToStringAndFactories) {
  EXPECT_EQ(MacAddress::Broadcast().ToString(), "ff:ff:ff:ff:ff:ff");
  EXPECT_TRUE(MacAddress::Broadcast().IsBroadcast());
  EXPECT_FALSE(MacAddress::Zero().IsBroadcast());
  const auto m = MacAddress::ForHost(0x010203);
  EXPECT_EQ(m.ToString(), "02:4e:4d:01:02:03");
}

TEST(Ipv4AddressTest, OctetsRoundTrip) {
  const auto a = Ipv4Address::FromOctets(192, 168, 1, 42);
  EXPECT_EQ(a.addr, 0xc0a8012au);
  EXPECT_EQ(a.ToString(), "192.168.1.42");
}

TEST(FiveTupleTest, ReversedSwapsEndpoints) {
  FiveTuple t{Ipv4Address::FromOctets(1, 1, 1, 1),
              Ipv4Address::FromOctets(2, 2, 2, 2), 100, 200, IpProto::kTcp};
  const auto r = t.Reversed();
  EXPECT_EQ(r.src_ip, t.dst_ip);
  EXPECT_EQ(r.dst_port, t.src_port);
  EXPECT_EQ(r.Reversed(), t);
}

TEST(FiveTupleTest, HashDiffersAcrossFields) {
  FiveTupleHash h;
  FiveTuple base{Ipv4Address::FromOctets(1, 1, 1, 1),
                 Ipv4Address::FromOctets(2, 2, 2, 2), 100, 200, IpProto::kTcp};
  FiveTuple other = base;
  other.src_port = 101;
  EXPECT_NE(h(base), h(other));
  other = base;
  other.proto = IpProto::kUdp;
  EXPECT_NE(h(base), h(other));
}

TEST(EthernetHeaderTest, RoundTrip) {
  EthernetHeader h;
  h.dst = MacAddress::ForHost(1);
  h.src = MacAddress::ForHost(2);
  h.ether_type = static_cast<uint16_t>(EtherType::kIpv4);
  std::vector<uint8_t> buf(kEthernetHeaderSize);
  h.Serialize(buf);
  auto parsed = EthernetHeader::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ether_type, h.ether_type);
}

TEST(EthernetHeaderTest, TruncatedFails) {
  std::vector<uint8_t> buf(kEthernetHeaderSize - 1);
  EXPECT_FALSE(EthernetHeader::Parse(buf).has_value());
}

TEST(ArpMessageTest, RoundTrip) {
  ArpMessage m;
  m.op = ArpOp::kReply;
  m.sender_mac = MacAddress::ForHost(5);
  m.sender_ip = Ipv4Address::FromOctets(10, 0, 0, 5);
  m.target_mac = MacAddress::ForHost(9);
  m.target_ip = Ipv4Address::FromOctets(10, 0, 0, 9);
  std::vector<uint8_t> buf(kArpBodySize);
  m.Serialize(buf);
  auto parsed = ArpMessage::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, ArpOp::kReply);
  EXPECT_EQ(parsed->sender_mac, m.sender_mac);
  EXPECT_EQ(parsed->sender_ip, m.sender_ip);
  EXPECT_EQ(parsed->target_mac, m.target_mac);
  EXPECT_EQ(parsed->target_ip, m.target_ip);
}

TEST(ArpMessageTest, RejectsBadHardwareType) {
  ArpMessage m;
  std::vector<uint8_t> buf(kArpBodySize);
  m.Serialize(buf);
  buf[0] = 0x99;  // corrupt HTYPE
  EXPECT_FALSE(ArpMessage::Parse(buf).has_value());
}

TEST(ArpMessageTest, RejectsBadOpcode) {
  ArpMessage m;
  std::vector<uint8_t> buf(kArpBodySize);
  m.Serialize(buf);
  StoreBe16(&buf[6], 7);
  EXPECT_FALSE(ArpMessage::Parse(buf).has_value());
}

TEST(Ipv4HeaderTest, RoundTripWithChecksum) {
  Ipv4Header h;
  h.dscp = 10;
  h.total_length = 60;
  h.identification = 0x1234;
  h.ttl = 17;
  h.protocol = IpProto::kTcp;
  h.src = Ipv4Address::FromOctets(172, 16, 0, 1);
  h.dst = Ipv4Address::FromOctets(172, 16, 0, 2);
  std::vector<uint8_t> buf(kIpv4MinHeaderSize);
  h.Serialize(buf);
  EXPECT_TRUE(Ipv4Header::ChecksumValid(buf));
  auto parsed = Ipv4Header::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dscp, 10);
  EXPECT_EQ(parsed->total_length, 60);
  EXPECT_EQ(parsed->identification, 0x1234);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->protocol, IpProto::kTcp);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);
}

TEST(Ipv4HeaderTest, CorruptionBreaksChecksum) {
  Ipv4Header h;
  h.total_length = 40;
  h.protocol = IpProto::kUdp;
  std::vector<uint8_t> buf(kIpv4MinHeaderSize);
  h.Serialize(buf);
  buf[8] ^= 0xff;  // flip TTL
  EXPECT_FALSE(Ipv4Header::ChecksumValid(buf));
}

TEST(Ipv4HeaderTest, RejectsNonIpv4Version) {
  std::vector<uint8_t> buf(kIpv4MinHeaderSize, 0);
  buf[0] = 0x65;  // version 6
  EXPECT_FALSE(Ipv4Header::Parse(buf).has_value());
}

TEST(Ipv4HeaderTest, RejectsUnknownProtocol) {
  Ipv4Header h;
  h.total_length = 40;
  std::vector<uint8_t> buf(kIpv4MinHeaderSize);
  h.Serialize(buf);
  buf[9] = 99;  // unknown proto
  EXPECT_FALSE(Ipv4Header::Parse(buf).has_value());
}

TEST(UdpHeaderTest, RoundTrip) {
  UdpHeader h{5432, 3306, 100, 0xbeef};
  std::vector<uint8_t> buf(kUdpHeaderSize);
  h.Serialize(buf);
  auto parsed = UdpHeader::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 5432);
  EXPECT_EQ(parsed->dst_port, 3306);
  EXPECT_EQ(parsed->length, 100);
  EXPECT_EQ(parsed->checksum, 0xbeef);
}

TEST(UdpHeaderTest, RejectsLengthBelowHeader) {
  UdpHeader h{1, 2, 4, 0};  // length < 8
  std::vector<uint8_t> buf(kUdpHeaderSize);
  h.Serialize(buf);
  EXPECT_FALSE(UdpHeader::Parse(buf).has_value());
}

TEST(TcpHeaderTest, RoundTrip) {
  TcpHeader h;
  h.src_port = 22;
  h.dst_port = 50000;
  h.seq = 0xdeadbeef;
  h.ack = 0xcafef00d;
  h.flags = TcpFlags::kSyn | TcpFlags::kAck;
  h.window = 1024;
  std::vector<uint8_t> buf(kTcpMinHeaderSize);
  h.Serialize(buf);
  auto parsed = TcpHeader::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 22);
  EXPECT_EQ(parsed->dst_port, 50000);
  EXPECT_EQ(parsed->seq, 0xdeadbeefu);
  EXPECT_EQ(parsed->ack, 0xcafef00du);
  EXPECT_EQ(parsed->flags, TcpFlags::kSyn | TcpFlags::kAck);
  EXPECT_EQ(parsed->window, 1024);
  EXPECT_EQ(parsed->header_length(), kTcpMinHeaderSize);
}

TEST(TcpHeaderTest, RejectsShortDataOffset) {
  TcpHeader h;
  std::vector<uint8_t> buf(kTcpMinHeaderSize);
  h.Serialize(buf);
  buf[12] = 0x30;  // data offset 3 words < minimum 5
  EXPECT_FALSE(TcpHeader::Parse(buf).has_value());
}

TEST(IcmpHeaderTest, RoundTrip) {
  IcmpHeader h;
  h.type = IcmpType::kEchoRequest;
  h.identifier = 77;
  h.sequence = 3;
  std::vector<uint8_t> buf(kIcmpHeaderSize);
  h.Serialize(buf);
  auto parsed = IcmpHeader::Parse(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, IcmpType::kEchoRequest);
  EXPECT_EQ(parsed->identifier, 77);
  EXPECT_EQ(parsed->sequence, 3);
}

TEST(HeadersPropertyTest, RandomRoundTripsNeverCorrupt) {
  Rng rng(31);
  for (int trial = 0; trial < 300; ++trial) {
    UdpHeader h;
    h.src_port = static_cast<uint16_t>(rng.NextU64());
    h.dst_port = static_cast<uint16_t>(rng.NextU64());
    h.length = static_cast<uint16_t>(8 + rng.NextBounded(1000));
    h.checksum = static_cast<uint16_t>(rng.NextU64());
    std::vector<uint8_t> buf(kUdpHeaderSize);
    h.Serialize(buf);
    auto p = UdpHeader::Parse(buf);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->src_port, h.src_port);
    EXPECT_EQ(p->dst_port, h.dst_port);
    EXPECT_EQ(p->length, h.length);
    EXPECT_EQ(p->checksum, h.checksum);
  }
}

}  // namespace
}  // namespace norman::net
