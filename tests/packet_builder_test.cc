#include "src/net/packet_builder.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/rng.h"
#include "src/net/checksum.h"
#include "src/net/parsed_packet.h"

namespace norman::net {
namespace {

FrameEndpoints TestEndpoints() {
  return FrameEndpoints{MacAddress::ForHost(1), MacAddress::ForHost(2),
                        Ipv4Address::FromOctets(10, 0, 0, 1),
                        Ipv4Address::FromOctets(10, 0, 0, 2)};
}

std::vector<uint8_t> Payload(size_t n, uint8_t fill = 0xab) {
  return std::vector<uint8_t>(n, fill);
}

bool TransportChecksumValid(const ParsedPacket& p,
                            std::span<const uint8_t> frame) {
  auto l4 = frame.subspan(p.l4_offset);
  // Recomputing over the segment with the checksum field in place folds to 0
  // for TCP. For UDP the 0xffff substitution breaks that identity, so zero
  // the field and compare instead.
  std::vector<uint8_t> copy(l4.begin(), l4.end());
  const size_t csum_off = p.is_udp() ? 6 : 16;
  const uint16_t wire = static_cast<uint16_t>((copy[csum_off] << 8) |
                                              copy[csum_off + 1]);
  copy[csum_off] = copy[csum_off + 1] = 0;
  return TransportChecksum(p.ipv4->src, p.ipv4->dst, p.ipv4->protocol,
                           copy) == wire;
}

TEST(PacketBuilderTest, UdpFrameParsesBack) {
  const auto payload = Payload(100);
  auto frame = BuildUdpFrame(TestEndpoints(), 5432, 9999, payload);
  auto p = ParseFrame(frame);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->is_udp());
  EXPECT_EQ(p->udp->src_port, 5432);
  EXPECT_EQ(p->udp->dst_port, 9999);
  EXPECT_EQ(p->udp->length, kUdpHeaderSize + 100);
  EXPECT_EQ(p->payload_size(), 100u);
  EXPECT_EQ(p->ipv4->total_length,
            kIpv4MinHeaderSize + kUdpHeaderSize + 100);
  EXPECT_TRUE(Ipv4Header::ChecksumValid(
      std::span<const uint8_t>(frame).subspan(kEthernetHeaderSize)));
  EXPECT_TRUE(TransportChecksumValid(*p, frame));
}

TEST(PacketBuilderTest, UdpFlowMatchesEndpoints) {
  auto frame = BuildUdpFrame(TestEndpoints(), 1111, 2222, Payload(10));
  auto p = ParseFrame(frame);
  ASSERT_TRUE(p.has_value());
  auto flow = p->flow();
  ASSERT_TRUE(flow.has_value());
  EXPECT_EQ(flow->src_ip, Ipv4Address::FromOctets(10, 0, 0, 1));
  EXPECT_EQ(flow->dst_ip, Ipv4Address::FromOctets(10, 0, 0, 2));
  EXPECT_EQ(flow->src_port, 1111);
  EXPECT_EQ(flow->dst_port, 2222);
  EXPECT_EQ(flow->proto, IpProto::kUdp);
}

TEST(PacketBuilderTest, TcpFrameParsesBack) {
  auto frame = BuildTcpFrame(TestEndpoints(), 22, 40000, /*seq=*/7,
                             /*ack=*/9, TcpFlags::kPsh | TcpFlags::kAck,
                             Payload(64));
  auto p = ParseFrame(frame);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->is_tcp());
  EXPECT_EQ(p->tcp->src_port, 22);
  EXPECT_EQ(p->tcp->seq, 7u);
  EXPECT_EQ(p->tcp->ack, 9u);
  EXPECT_EQ(p->tcp->flags, TcpFlags::kPsh | TcpFlags::kAck);
  EXPECT_EQ(p->payload_size(), 64u);
  EXPECT_TRUE(TransportChecksumValid(*p, frame));
}

TEST(PacketBuilderTest, IcmpEchoFrame) {
  auto frame = BuildIcmpEchoFrame(TestEndpoints(), IcmpType::kEchoRequest,
                                  42, 1, Payload(32));
  auto p = ParseFrame(frame);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->is_icmp());
  EXPECT_EQ(p->icmp->identifier, 42);
  // ICMP checksum folds to zero over the whole body.
  auto l4 = std::span<const uint8_t>(frame).subspan(p->l4_offset);
  EXPECT_EQ(InternetChecksum(l4), 0);
}

TEST(PacketBuilderTest, ArpRequestIsBroadcast) {
  auto frame = BuildArpRequest(MacAddress::ForHost(3),
                               Ipv4Address::FromOctets(10, 0, 0, 3),
                               Ipv4Address::FromOctets(10, 0, 0, 7));
  auto p = ParseFrame(frame);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->is_arp());
  EXPECT_TRUE(p->eth.dst.IsBroadcast());
  EXPECT_EQ(p->arp->op, ArpOp::kRequest);
  EXPECT_EQ(p->arp->target_ip, Ipv4Address::FromOctets(10, 0, 0, 7));
  EXPECT_EQ(p->arp->sender_mac, MacAddress::ForHost(3));
}

TEST(PacketBuilderTest, ArpReplyIsUnicast) {
  auto frame = BuildArpReply(MacAddress::ForHost(7),
                             Ipv4Address::FromOctets(10, 0, 0, 7),
                             MacAddress::ForHost(3),
                             Ipv4Address::FromOctets(10, 0, 0, 3));
  auto p = ParseFrame(frame);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->is_arp());
  EXPECT_EQ(p->eth.dst, MacAddress::ForHost(3));
  EXPECT_EQ(p->arp->op, ArpOp::kReply);
  EXPECT_EQ(p->arp->sender_ip, Ipv4Address::FromOctets(10, 0, 0, 7));
}

TEST(RewriteTest, SourceRewritePreservesChecksums) {
  auto frame = BuildUdpFrame(TestEndpoints(), 1000, 2000, Payload(40));
  ASSERT_TRUE(RewriteSource(frame, Ipv4Address::FromOctets(192, 168, 9, 9),
                            31337));
  auto p = ParseFrame(frame);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->is_udp());
  EXPECT_EQ(p->ipv4->src, Ipv4Address::FromOctets(192, 168, 9, 9));
  EXPECT_EQ(p->udp->src_port, 31337);
  EXPECT_EQ(p->ipv4->dst, Ipv4Address::FromOctets(10, 0, 0, 2));  // untouched
  EXPECT_TRUE(Ipv4Header::ChecksumValid(
      std::span<const uint8_t>(frame).subspan(kEthernetHeaderSize)));
  EXPECT_TRUE(TransportChecksumValid(*p, frame));
}

TEST(RewriteTest, DestinationRewritePreservesChecksums) {
  auto frame = BuildTcpFrame(TestEndpoints(), 1000, 2000, 1, 2,
                             TcpFlags::kAck, Payload(10));
  ASSERT_TRUE(RewriteDestination(frame,
                                 Ipv4Address::FromOctets(172, 16, 5, 5), 80));
  auto p = ParseFrame(frame);
  ASSERT_TRUE(p.has_value());
  ASSERT_TRUE(p->is_tcp());
  EXPECT_EQ(p->ipv4->dst, Ipv4Address::FromOctets(172, 16, 5, 5));
  EXPECT_EQ(p->tcp->dst_port, 80);
  EXPECT_TRUE(Ipv4Header::ChecksumValid(
      std::span<const uint8_t>(frame).subspan(kEthernetHeaderSize)));
  EXPECT_TRUE(TransportChecksumValid(*p, frame));
}

TEST(RewriteTest, RandomizedRewritesAlwaysChecksumClean) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    const bool udp = rng.NextBool(0.5);
    const auto payload = Payload(rng.NextBounded(200));
    auto frame =
        udp ? BuildUdpFrame(TestEndpoints(),
                            static_cast<uint16_t>(rng.NextInRange(1, 65535)),
                            static_cast<uint16_t>(rng.NextInRange(1, 65535)),
                            payload)
            : BuildTcpFrame(TestEndpoints(),
                            static_cast<uint16_t>(rng.NextInRange(1, 65535)),
                            static_cast<uint16_t>(rng.NextInRange(1, 65535)),
                            rng.NextU32(), rng.NextU32(), TcpFlags::kAck,
                            payload);
    const Ipv4Address new_ip{rng.NextU32()};
    const auto new_port = static_cast<uint16_t>(rng.NextInRange(1, 65535));
    ASSERT_TRUE(rng.NextBool(0.5) ? RewriteSource(frame, new_ip, new_port)
                                  : RewriteDestination(frame, new_ip,
                                                       new_port));
    auto p = ParseFrame(frame);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(Ipv4Header::ChecksumValid(
        std::span<const uint8_t>(frame).subspan(kEthernetHeaderSize)))
        << "trial " << trial;
    EXPECT_TRUE(TransportChecksumValid(*p, frame)) << "trial " << trial;
  }
}

TEST(RewriteTest, NonIpFrameRejected) {
  auto frame = BuildArpRequest(MacAddress::ForHost(1),
                               Ipv4Address::FromOctets(10, 0, 0, 1),
                               Ipv4Address::FromOctets(10, 0, 0, 2));
  EXPECT_FALSE(RewriteSource(frame, Ipv4Address{1}, 1));
}

TEST(ParseFrameTest, UnknownEtherTypeKeepsEthOnly) {
  std::vector<uint8_t> frame(kEthernetHeaderSize + 10, 0);
  frame[12] = 0x86;  // 0x86dd = IPv6
  frame[13] = 0xdd;
  auto p = ParseFrame(frame);
  ASSERT_TRUE(p.has_value());
  EXPECT_FALSE(p->is_ipv4());
  EXPECT_FALSE(p->is_arp());
  EXPECT_EQ(p->flow(), std::nullopt);
}

TEST(ParseFrameTest, TruncatedEthernetFails) {
  std::vector<uint8_t> frame(8, 0);
  EXPECT_FALSE(ParseFrame(frame).has_value());
}

}  // namespace
}  // namespace norman::net
