// Lifecycle tracing: deterministic 1-in-N sampling, the span ring buffer,
// Chrome trace export, and the tiling invariant — a traced packet's spans
// are contiguous and sum exactly to its end-to-end latency. Plus the
// drop-attribution invariant: every drop lands in exactly one reason
// counter, and the per-reason counters reproduce the legacy aggregates.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "src/common/drop_reason.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/net/packet_builder.h"
#include "src/net/packet_pool.h"
#include "src/norman/socket.h"
#include "src/tools/tools.h"
#include "src/workload/testbed.h"

namespace norman {
namespace {

using telemetry::MetricsRegistry;
using telemetry::PacketTracer;
using telemetry::TraceSpan;

constexpr auto kPeerIp = net::Ipv4Address::FromOctets(10, 0, 0, 2);

TEST(PacketTracerTest, DisabledByDefault) {
  MetricsRegistry reg;
  PacketTracer tracer(&reg, 16);
  EXPECT_FALSE(tracer.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(tracer.SampleArrival(), 0u);
  }
  tracer.Record(0, "tx.dma", 0, 10);  // id 0 -> no-op
  EXPECT_EQ(tracer.total_recorded(), 0u);
}

TEST(PacketTracerTest, SamplingCadenceIsDeterministicOneInN) {
  MetricsRegistry reg;
  PacketTracer tracer(&reg, 16);
  tracer.set_sample_interval(4);
  std::vector<uint32_t> ids;
  for (int i = 0; i < 16; ++i) {
    ids.push_back(tracer.SampleArrival());
  }
  // Arrivals 0, 4, 8, 12 get fresh ids 1..4; everything else is 0.
  for (int i = 0; i < 16; ++i) {
    if (i % 4 == 0) {
      EXPECT_EQ(ids[static_cast<size_t>(i)],
                static_cast<uint32_t>(i / 4 + 1));
    } else {
      EXPECT_EQ(ids[static_cast<size_t>(i)], 0u);
    }
  }
}

TEST(PacketTracerTest, SampleEveryPacket) {
  MetricsRegistry reg;
  PacketTracer tracer(&reg, 16);
  tracer.set_sample_interval(1);
  for (uint32_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(tracer.SampleArrival(), i);
  }
}

TEST(PacketTracerTest, RingWrapKeepsNewestSpans) {
  MetricsRegistry reg;
  PacketTracer tracer(&reg, 4);
  for (uint32_t i = 1; i <= 10; ++i) {
    tracer.Record(i, "tx.wire", i * 10, i * 10 + 5);
  }
  EXPECT_EQ(tracer.total_recorded(), 10u);
  EXPECT_EQ(tracer.dropped_spans(), 6u);
  const auto spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first among the survivors: ids 7, 8, 9, 10.
  for (size_t i = 0; i < spans.size(); ++i) {
    EXPECT_EQ(spans[i].trace_id, static_cast<uint32_t>(i + 7));
  }
}

TEST(PacketTracerTest, RecordFeedsStageHistograms) {
  MetricsRegistry reg;
  PacketTracer tracer(&reg, 16);
  tracer.Record(1, "tx.wire", 100, 350);
  tracer.Record(2, "tx.wire", 100, 350);
  tracer.Record(3, "rx.dma", 0, 40);
  const auto* wire = tracer.StageHistogram("tx.wire");
  ASSERT_NE(wire, nullptr);
  EXPECT_EQ(wire->count(), 2u);
  EXPECT_EQ(wire->min(), 250);
  // The histogram lives in the registry under "trace.stage.<name>".
  EXPECT_EQ(reg.FindHistogram("trace.stage.tx.wire"), wire);
  EXPECT_EQ(tracer.StageHistogram("never.recorded"), nullptr);
}

TEST(PacketTracerTest, ChromeTraceJsonShape) {
  MetricsRegistry reg;
  PacketTracer tracer(&reg, 16);
  tracer.Record(1, "tx.dma", 1000, 2500);
  tracer.Record(1, "tx.wire", 2500, 9000);
  const std::string json = tracer.ChromeTraceJson();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["), 0u)
      << json;
  EXPECT_EQ(json.back(), '}');
  // Two complete events, microsecond timestamps, tid = trace id.
  EXPECT_NE(json.find("\"name\":\"tx.dma\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tid\":1"), std::string::npos) << json;
}

TEST(PacketTracerTest, ClearDropsSpansKeepsKnob) {
  MetricsRegistry reg;
  PacketTracer tracer(&reg, 8);
  tracer.set_sample_interval(2);
  (void)tracer.SampleArrival();
  tracer.Record(1, "tx.dma", 0, 5);
  tracer.Clear();
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_TRUE(tracer.Spans().empty());
  EXPECT_EQ(tracer.sample_interval(), 2u);
  // Arrival counter restarts: the first arrival is sampled again.
  EXPECT_NE(tracer.SampleArrival(), 0u);
}

// ---- End-to-end tiling invariant -----------------------------------------

// Runs echo traffic with every packet sampled and checks, per trace id,
// that the recorded spans are contiguous (no gaps, no overlaps) and that
// for frames that reached the wire the last span ends exactly at
// meta().completed_at — i.e. span durations sum to end-to-end latency.
TEST(TraceIntegrationTest, SpansTileToEndToEndLatency) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  bed.sim().tracer().set_sample_interval(1);

  auto& k = bed.kernel();
  k.processes().AddUser(1, "u");
  const auto pid = *k.processes().Spawn(1, "app");
  auto sock = Socket::Connect(&k, pid, kPeerIp, 6000, {});
  ASSERT_TRUE(sock.ok());

  // trace_id -> (arrival-side start, completed_at) for egressed frames.
  std::map<uint32_t, Nanos> completed;
  bed.SetEgressHook([&completed](const net::Packet& p) {
    if (p.meta().trace_id != 0) {
      completed[p.meta().trace_id] = p.meta().completed_at;
    }
  });

  const std::vector<uint8_t> payload(400, 0x33);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sock->Send(payload).ok());
    bed.sim().Run();
  }
  EXPECT_FALSE(completed.empty());

  std::map<uint32_t, std::vector<TraceSpan>> by_id;
  for (const auto& span : bed.sim().tracer().Spans()) {
    by_id[span.trace_id].push_back(span);
  }
  ASSERT_GE(by_id.size(), 20u);  // 10 TX frames + 10 RX echoes

  for (auto& [id, spans] : by_id) {
    std::sort(spans.begin(), spans.end(),
              [](const TraceSpan& a, const TraceSpan& b) {
                return a.start != b.start ? a.start < b.start : a.end < b.end;
              });
    Nanos sum = 0;
    for (size_t i = 0; i < spans.size(); ++i) {
      ASSERT_LE(spans[i].start, spans[i].end) << "id " << id;
      if (i > 0) {
        ASSERT_EQ(spans[i].start, spans[i - 1].end)
            << "gap/overlap in trace " << id << " before stage "
            << spans[i].stage;
      }
      sum += spans[i].end - spans[i].start;
    }
    // Contiguity means the durations tile the packet's whole lifetime.
    EXPECT_EQ(sum, spans.back().end - spans.front().start) << "id " << id;
    auto it = completed.find(id);
    if (it != completed.end()) {
      EXPECT_EQ(spans.back().end, it->second)
          << "trace " << id << " does not end at wire completion";
      EXPECT_EQ(sum, it->second - spans.front().start)
          << "trace " << id << " span sum != end-to-end latency";
    }
  }
}

// ---- Drop attribution -----------------------------------------------------

// Every drop must land in exactly one reason counter: the per-reason
// counters reproduce the aggregate accessors, the conservation equation
// still balances, and the owner ledger sums to the same total.
TEST(DropAccountingTest, EveryDropHasExactlyOneReason) {
  workload::TestBedOptions opts;
  opts.echo = true;
  workload::TestBed bed(opts);
  auto& k = bed.kernel();
  k.processes().AddUser(1001, "alice");
  const auto pid = *k.processes().Spawn(1001, "app");

  ASSERT_TRUE(tools::IptablesAppend(&k, kernel::kRootUid,
                                    "-A OUTPUT -p udp --dport 9 -j DROP")
                  .ok());

  auto good = Socket::Connect(&k, pid, kPeerIp, 6000, {});
  auto bad = Socket::Connect(&k, pid, kPeerIp, 9, {});
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(bad.ok());
  const std::vector<uint8_t> payload(128, 0x11);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(good->Send(payload).ok());
    ASSERT_TRUE(bad->Send(payload).ok());
    bed.sim().Run();
  }
  // Unmatched + unparseable RX traffic, and an on-NIC ICMP echo response.
  Nanos t = bed.sim().Now();
  bed.InjectUdpFromPeer(1234, 4321, 64, t += kMicrosecond);
  bed.InjectFromNetwork(net::MakePacket(std::vector<uint8_t>(6, 0xee)),
                        t += kMicrosecond);
  const net::FrameEndpoints peer_ep{net::MacAddress::ForHost(2),
                                    k.options().host_mac, kPeerIp,
                                    k.options().host_ip};
  bed.InjectFromNetwork(
      net::BuildIcmpEchoPacket(peer_ep, net::IcmpType::kEchoRequest, 7, 1,
                               payload),
      t += kMicrosecond);
  bed.sim().Run();

  const auto& s = bed.nic().stats();
  // The scenario hit the reasons it was built to hit.
  EXPECT_EQ(s.tx_drops(DropReason::kFilterDeny), 6u);
  EXPECT_EQ(s.rx_drops(DropReason::kNicConsumed), 1u);
  EXPECT_GE(s.rx_unmatched(), telemetry::HotCount(2));

  // Per-reason counters reproduce the aggregates...
  uint64_t tx_sum = 0;
  uint64_t rx_sum = 0;
  for (size_t r = 1; r < kNumDropReasons; ++r) {
    tx_sum += s.tx_drops(static_cast<DropReason>(r));
    rx_sum += s.rx_drops(static_cast<DropReason>(r));
  }
  EXPECT_EQ(tx_sum + rx_sum, s.total_drops());
  EXPECT_EQ(s.tx_dropped() + s.tx_sched_dropped(), tx_sum);
  EXPECT_EQ(s.rx_dropped() + s.rx_ring_overflow(), rx_sum);

  // ...the conservation equations still balance (they mix hot-tier volume
  // counters with exact drop counters, so only at stats level >= 1)...
  if (telemetry::kHotStatsEnabled) {
    EXPECT_EQ(s.tx_seen(), s.tx_accepted() + s.tx_dropped() +
                               s.tx_fallback() + s.tx_sched_dropped());
    EXPECT_EQ(s.rx_seen(), s.rx_accepted() + s.rx_dropped() +
                               s.rx_fallback() + s.rx_unmatched() +
                               s.rx_ring_overflow());
  }

  // ...and the owner ledger accounts for every drop exactly once.
  uint64_t ledger_sum = 0;
  for (const auto& rec : s.DropLedger()) {
    EXPECT_NE(rec.reason, DropReason::kNone);
    EXPECT_GT(rec.count, 0u);
    ledger_sum += rec.count;
  }
  EXPECT_EQ(ledger_sum, s.total_drops());
  // The filter drops are attributed to the owning process.
  bool found_owner = false;
  for (const auto& rec : s.DropLedger()) {
    if (rec.direction == net::Direction::kTx &&
        rec.reason == DropReason::kFilterDeny && rec.owner_pid == pid) {
      found_owner = true;
      EXPECT_EQ(rec.count, 6u);
    }
  }
  EXPECT_TRUE(found_owner);
}

}  // namespace
}  // namespace norman
