// Tests for the NIC-terminated services and custom overlay policies:
// ICMP echo responder, the OverlayStage, and kernel LoadCustomPolicy.
#include <gtest/gtest.h>

#include "src/dataplane/icmp_responder.h"
#include "src/norman/socket.h"
#include "src/overlay/assembler.h"
#include "src/workload/testbed.h"
#include "src/net/packet_pool.h"

namespace norman {
namespace {

using kernel::Chain;
using kernel::kRootUid;
using net::Ipv4Address;
using net::MacAddress;

constexpr auto kPeerIp = Ipv4Address::FromOctets(10, 0, 0, 2);

class NicServicesTest : public ::testing::Test {
 protected:
  NicServicesTest() {
    bed_.kernel().processes().AddUser(1, "u");
    pid_ = *bed_.kernel().processes().Spawn(1, "app");
  }

  net::PacketPtr PingFrame(uint16_t seq, Ipv4Address target) {
    net::FrameEndpoints ep{MacAddress::ForHost(2),
                           bed_.kernel().options().host_mac, kPeerIp, target};
    return net::MakePacket(net::BuildIcmpEchoFrame(
        ep, net::IcmpType::kEchoRequest, /*id=*/7, seq,
        std::vector<uint8_t>(24, 0x42)));
  }

  workload::TestBed bed_;
  kernel::Pid pid_ = 0;
};

TEST_F(NicServicesTest, NicAnswersPing) {
  bed_.InjectFromNetwork(PingFrame(1, bed_.kernel().options().host_ip), 100);
  bed_.sim().Run();
  ASSERT_EQ(bed_.egress_frames(), 1u);
  auto reply = net::ParseFrame(bed_.egress()[0]->bytes());
  ASSERT_TRUE(reply && reply->is_icmp());
  EXPECT_EQ(reply->icmp->type, net::IcmpType::kEchoReply);
  EXPECT_EQ(reply->icmp->identifier, 7);
  EXPECT_EQ(reply->icmp->sequence, 1);
  EXPECT_EQ(reply->ipv4->src, bed_.kernel().options().host_ip);
  EXPECT_EQ(reply->ipv4->dst, kPeerIp);
  EXPECT_EQ(reply->payload_size(), 24u);
  EXPECT_EQ(bed_.kernel().icmp().echo_replies(), 1u);
  // The request never reached the host slow path.
  EXPECT_EQ(bed_.nic().stats().rx_unmatched(), 0u);
}

TEST_F(NicServicesTest, PingForOtherAddressIgnored) {
  bed_.InjectFromNetwork(PingFrame(1, Ipv4Address::FromOctets(10, 0, 0, 77)),
                         100);
  bed_.sim().Run();
  EXPECT_EQ(bed_.kernel().icmp().echo_replies(), 0u);
  EXPECT_TRUE(bed_.egress().empty());
  EXPECT_EQ(bed_.nic().stats().rx_unmatched(),
            telemetry::HotCount(1));  // fell to the host path
}

TEST_F(NicServicesTest, CustomTxPolicyDropsLowTtl) {
  // A policy iptables cannot express: drop TX IPv4 packets with TTL < 5.
  auto prog = overlay::Assemble(R"(
      ldf r1, is_ipv4
      jeq r1, 0, accept
      ldf r2, ip_ttl
      jlt r2, 5, drop
  accept:
      ret 1
  drop:
      ret 0
  )");
  ASSERT_TRUE(prog.ok()) << prog.status();
  auto load = bed_.kernel().LoadCustomPolicy(kRootUid, Chain::kOutput, *prog);
  ASSERT_TRUE(load.ok()) << load.status();
  EXPECT_GT(*load, 0);

  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 5000, {});
  ASSERT_TRUE(sock.ok());
  // Default TTL is 64: passes.
  ASSERT_TRUE(sock->Send("normal ttl").ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 1u);

  // Hand-craft a TTL-2 frame through the zero-copy interface.
  net::FrameEndpoints ep{bed_.kernel().options().host_mac,
                         MacAddress::ForHost(2),
                         bed_.kernel().options().host_ip, kPeerIp};
  auto low_ttl = net::BuildUdpFrame(ep, sock->tuple().src_port, 5000,
                                    std::vector<uint8_t>(8, 1), /*dscp=*/0,
                                    /*ttl=*/2);
  ASSERT_TRUE(
      sock->SendFrame(net::MakePacket(std::move(low_ttl)))
          .ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 1u);  // dropped by the custom policy
  EXPECT_EQ(bed_.nic().stats().tx_dropped(), 1u);
}

TEST_F(NicServicesTest, CustomPolicyRequiresRoot) {
  auto prog = overlay::Assemble("ret 1");
  ASSERT_TRUE(prog.ok());
  EXPECT_EQ(bed_.kernel()
                .LoadCustomPolicy(/*caller=*/1, Chain::kOutput, *prog)
                .status()
                .code(),
            StatusCode::kPermissionDenied);
}

TEST_F(NicServicesTest, CustomPolicyRejectsInvalidProgram) {
  overlay::Program bad{overlay::Instruction::Ldi(1, 0)};  // falls off end
  EXPECT_FALSE(
      bed_.kernel().LoadCustomPolicy(kRootUid, Chain::kOutput, bad).ok());
}

TEST_F(NicServicesTest, CustomPolicyCanBeCleared) {
  auto drop_all = overlay::Assemble("ret 0");
  ASSERT_TRUE(drop_all.ok());
  ASSERT_TRUE(
      bed_.kernel().LoadCustomPolicy(kRootUid, Chain::kOutput, *drop_all)
          .ok());
  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 5000, {});
  ASSERT_TRUE(sock.ok());
  ASSERT_TRUE(sock->Send("blocked").ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 0u);

  // Clear (empty program -> accept-all) and retry.
  ASSERT_TRUE(
      bed_.kernel().LoadCustomPolicy(kRootUid, Chain::kOutput, {}).ok());
  ASSERT_TRUE(sock->Send("unblocked").ok());
  bed_.sim().Run();
  EXPECT_EQ(bed_.egress_frames(), 1u);
}

TEST_F(NicServicesTest, CustomRxPolicyFiltersInbound) {
  // Drop every RX UDP packet with payload > 100B (a DoS guard).
  auto prog = overlay::Assemble(R"(
      ldf r1, payload_len
      jgt r1, 100, drop
      ret 1
  drop:
      ret 0
  )");
  ASSERT_TRUE(prog.ok()) << prog.status();
  ASSERT_TRUE(
      bed_.kernel().LoadCustomPolicy(kRootUid, Chain::kInput, *prog).ok());

  auto sock = Socket::Connect(&bed_.kernel(), pid_, kPeerIp, 6000, {});
  ASSERT_TRUE(sock.ok());
  bed_.InjectUdpFromPeer(6000, sock->tuple().src_port, 50, 100);    // ok
  bed_.InjectUdpFromPeer(6000, sock->tuple().src_port, 500, 200);   // dropped
  bed_.sim().Run();
  EXPECT_EQ(sock->RecvFrame() != nullptr, true);
  EXPECT_EQ(sock->RecvFrame(), nullptr);
  EXPECT_EQ(bed_.nic().stats().rx_dropped(), 1u);
}

}  // namespace
}  // namespace norman
