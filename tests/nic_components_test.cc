// Unit tests for SRAM accounting, flow table, RSS, MMIO privilege windows,
// and notification queues.
#include <gtest/gtest.h>

#include "src/nic/flow_table.h"
#include "src/nic/mmio.h"
#include "src/nic/notification.h"
#include "src/nic/rss.h"
#include "src/nic/sram.h"

namespace norman::nic {
namespace {

using net::FiveTuple;
using net::IpProto;
using net::Ipv4Address;

// --- SRAM ---

TEST(SramTest, AllocateAndFree) {
  SramAllocator sram(1000);
  EXPECT_TRUE(sram.Allocate("a", 400).ok());
  EXPECT_TRUE(sram.Allocate("b", 600).ok());
  EXPECT_EQ(sram.available(), 0u);
  EXPECT_FALSE(sram.Allocate("c", 1).ok());
  sram.Free("a", 400);
  EXPECT_EQ(sram.available(), 400u);
  EXPECT_EQ(sram.UsedBy("a"), 0u);
  EXPECT_EQ(sram.UsedBy("b"), 600u);
}

TEST(SramTest, ExhaustionReturnsResourceExhausted) {
  SramAllocator sram(100);
  const Status s = sram.Allocate("x", 200);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
}

TEST(SramTest, SloppyFreeIsSafe) {
  SramAllocator sram(100);
  sram.Free("never_allocated", 50);
  EXPECT_EQ(sram.used(), 0u);
  ASSERT_TRUE(sram.Allocate("a", 10).ok());
  sram.Free("a", 99);  // more than allocated: ignored
  EXPECT_EQ(sram.UsedBy("a"), 10u);
}

// --- FlowTable ---

FlowEntry MakeEntry(uint32_t conn, uint16_t src_port, uint32_t uid = 1000) {
  FlowEntry e;
  e.conn_id = conn;
  e.tuple = FiveTuple{Ipv4Address::FromOctets(10, 0, 0, 1),
                      Ipv4Address::FromOctets(10, 0, 0, 2), src_port, 80,
                      IpProto::kTcp};
  e.owner = overlay::ConnMetadata{conn, uid, 100 + conn, 1};
  e.comm = "postgres";
  return e;
}

TEST(FlowTableTest, InsertLookupRemove) {
  SramAllocator sram(1 * kMiB);
  FlowTable table(&sram);
  ASSERT_TRUE(table.Insert(MakeEntry(1, 1111)).ok());
  ASSERT_TRUE(table.Insert(MakeEntry(2, 2222)).ok());
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(sram.UsedBy("flow_table"), 2 * kFlowEntryBytes);

  FlowEntry* e = table.Lookup(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->tuple.src_port, 1111);
  EXPECT_EQ(e->owner.owner_uid, 1000u);

  ASSERT_TRUE(table.Remove(1).ok());
  EXPECT_EQ(table.Lookup(1), nullptr);
  EXPECT_EQ(sram.UsedBy("flow_table"), kFlowEntryBytes);
}

TEST(FlowTableTest, RejectsDuplicates) {
  SramAllocator sram(1 * kMiB);
  FlowTable table(&sram);
  ASSERT_TRUE(table.Insert(MakeEntry(1, 1111)).ok());
  EXPECT_EQ(table.Insert(MakeEntry(1, 9999)).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(table.Insert(MakeEntry(3, 1111)).code(),
            StatusCode::kAlreadyExists);  // same tuple
}

TEST(FlowTableTest, RejectsReservedConnId) {
  SramAllocator sram(1 * kMiB);
  FlowTable table(&sram);
  EXPECT_EQ(table.Insert(MakeEntry(0, 1)).code(),
            StatusCode::kInvalidArgument);
}

TEST(FlowTableTest, SramExhaustionPropagates) {
  SramAllocator sram(kFlowEntryBytes * 2);
  FlowTable table(&sram);
  ASSERT_TRUE(table.Insert(MakeEntry(1, 1)).ok());
  ASSERT_TRUE(table.Insert(MakeEntry(2, 2)).ok());
  EXPECT_EQ(table.Insert(MakeEntry(3, 3)).code(),
            StatusCode::kResourceExhausted);
}

TEST(FlowTableTest, InboundTupleLookupUsesReversedTuple) {
  SramAllocator sram(1 * kMiB);
  FlowTable table(&sram);
  ASSERT_TRUE(table.Insert(MakeEntry(1, 5555)).ok());
  // Inbound packet: remote (10.0.0.2:80) -> local (10.0.0.1:5555).
  FiveTuple inbound{Ipv4Address::FromOctets(10, 0, 0, 2),
                    Ipv4Address::FromOctets(10, 0, 0, 1), 80, 5555,
                    IpProto::kTcp};
  FlowEntry* e = table.LookupByInboundTuple(inbound);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->conn_id, 1u);
  // The TX direction tuple must NOT match as inbound.
  EXPECT_EQ(table.LookupByInboundTuple(e->tuple), nullptr);
}

TEST(FlowTableTest, RemoveUnknownFails) {
  SramAllocator sram(1 * kMiB);
  FlowTable table(&sram);
  EXPECT_EQ(table.Remove(42).code(), StatusCode::kNotFound);
}

TEST(FlowTableTest, ForEachVisitsAll) {
  SramAllocator sram(1 * kMiB);
  FlowTable table(&sram);
  ASSERT_TRUE(table.Insert(MakeEntry(1, 1)).ok());
  ASSERT_TRUE(table.Insert(MakeEntry(2, 2)).ok());
  int count = 0;
  table.ForEach([&count](const FlowEntry&) { ++count; });
  EXPECT_EQ(count, 2);
}

// --- RSS ---

TEST(RssTest, SteeringIsDeterministicAndInRange) {
  RssEngine rss(8);
  FiveTuple t{Ipv4Address::FromOctets(1, 2, 3, 4),
              Ipv4Address::FromOctets(5, 6, 7, 8), 1000, 2000, IpProto::kUdp};
  const uint16_t q = rss.Steer(t);
  EXPECT_LT(q, 8);
  EXPECT_EQ(rss.Steer(t), q);  // stable
}

TEST(RssTest, DifferentFlowsSpreadAcrossQueues) {
  RssEngine rss(8);
  std::array<int, 8> counts{};
  for (uint16_t port = 1000; port < 2000; ++port) {
    FiveTuple t{Ipv4Address::FromOctets(1, 2, 3, 4),
                Ipv4Address::FromOctets(5, 6, 7, 8), port, 80, IpProto::kTcp};
    counts[rss.Steer(t)]++;
  }
  for (int q = 0; q < 8; ++q) {
    EXPECT_GT(counts[q], 1000 / 8 / 4) << "queue " << q << " starved";
  }
}

TEST(RssTest, SeedChangesMapping) {
  RssEngine a(8, /*seed=*/1), b(8, /*seed=*/2);
  int diffs = 0;
  for (uint16_t port = 0; port < 200; ++port) {
    FiveTuple t{Ipv4Address::FromOctets(9, 9, 9, 9),
                Ipv4Address::FromOctets(8, 8, 8, 8), port, 443,
                IpProto::kTcp};
    if (a.Steer(t) != b.Steer(t)) {
      ++diffs;
    }
  }
  EXPECT_GT(diffs, 50);
}

TEST(RssTest, CustomIndirectionOverrides) {
  RssEngine rss(4);
  // Pin every indirection slot to queue 3 — "virtual interface" carve-out.
  for (size_t i = 0; i < RssEngine::kIndirectionEntries; ++i) {
    ASSERT_TRUE(rss.SetIndirection(i, 3).ok());
  }
  FiveTuple t{Ipv4Address::FromOctets(1, 1, 1, 1),
              Ipv4Address::FromOctets(2, 2, 2, 2), 5, 6, IpProto::kUdp};
  EXPECT_EQ(rss.Steer(t), 3);
}

TEST(RssTest, SetIndirectionRejectsOutOfRange) {
  RssEngine rss(4);
  // A queue the device doesn't have: must be an explicit error, not a
  // silent queue%num_queues remap that steers traffic somewhere unintended.
  const Status bad_queue = rss.SetIndirection(0, 4);
  EXPECT_EQ(bad_queue.code(), StatusCode::kInvalidArgument);
  const Status bad_index =
      rss.SetIndirection(RssEngine::kIndirectionEntries, 0);
  EXPECT_EQ(bad_index.code(), StatusCode::kInvalidArgument);
  // The failed writes left the table untouched.
  EXPECT_EQ(rss.indirection(0), 0);
}

TEST(RssTest, ZeroQueuesClampsToOne) {
  RssEngine rss(0);
  EXPECT_EQ(rss.num_queues(), 1);
}

// --- MMIO privilege ---

TEST(MmioTest, PrivilegedSeesEverything) {
  RegisterFile regs;
  PrivilegedMmio priv(&regs);
  priv.Write(0x0, 123);
  priv.Write(DoorbellAddr(7, kRegTxHead), 45);
  EXPECT_EQ(priv.Read(0x0), 123u);
  EXPECT_EQ(priv.Read(DoorbellAddr(7, kRegTxHead)), 45u);
}

TEST(MmioTest, DoorbellWindowConfinedToItsConnection) {
  RegisterFile regs;
  PrivilegedMmio priv(&regs);
  DoorbellWindow win(&regs, /*conn_id=*/3);

  ASSERT_TRUE(win.Write(kRegTxHead, 10).ok());
  EXPECT_EQ(priv.Read(DoorbellAddr(3, kRegTxHead)), 10u);

  // Registers beyond the 4-word window fault.
  EXPECT_EQ(win.Write(4, 1).code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(win.Read(99).status().code(), StatusCode::kPermissionDenied);
}

TEST(MmioTest, WindowsForDifferentConnectionsDoNotAlias) {
  RegisterFile regs;
  DoorbellWindow w3(&regs, 3), w4(&regs, 4);
  ASSERT_TRUE(w3.Write(kRegTxHead, 100).ok());
  ASSERT_TRUE(w4.Write(kRegTxHead, 200).ok());
  EXPECT_EQ(*w3.Read(kRegTxHead), 100u);
  EXPECT_EQ(*w4.Read(kRegTxHead), 200u);
}

TEST(MmioTest, UnmappedWindowFaults) {
  DoorbellWindow win;
  EXPECT_FALSE(win.valid());
  EXPECT_EQ(win.Write(kRegTxHead, 1).code(), StatusCode::kPermissionDenied);
}

TEST(MmioTest, AccessCountersTrackTraffic) {
  RegisterFile regs;
  PrivilegedMmio priv(&regs);
  priv.Write(1, 1);
  priv.Write(2, 2);
  priv.Read(1);
  EXPECT_EQ(regs.write_count(), 2u);
  EXPECT_EQ(regs.read_count(), 1u);
}

// --- Notification queues ---

TEST(NotificationTest, PostAndPoll) {
  NotificationQueue q(8);
  EXPECT_TRUE(q.empty());
  EXPECT_TRUE(q.Post({NotificationKind::kRxData, 5, 100}));
  EXPECT_TRUE(q.Post({NotificationKind::kTxDrained, 6, 200}));
  auto n1 = q.Poll();
  ASSERT_TRUE(n1.has_value());
  EXPECT_EQ(n1->kind, NotificationKind::kRxData);
  EXPECT_EQ(n1->conn_id, 5u);
  EXPECT_EQ(n1->timestamp, 100);
  auto n2 = q.Poll();
  ASSERT_TRUE(n2.has_value());
  EXPECT_EQ(n2->conn_id, 6u);
  EXPECT_FALSE(q.Poll().has_value());
}

TEST(NotificationTest, OverflowCountsAndDrops) {
  NotificationQueue q(2);
  EXPECT_TRUE(q.Post({NotificationKind::kRxData, 1, 0}));
  EXPECT_TRUE(q.Post({NotificationKind::kRxData, 2, 0}));
  EXPECT_FALSE(q.Post({NotificationKind::kRxData, 3, 0}));
  EXPECT_EQ(q.overflows(), 1u);
  EXPECT_EQ(q.size(), 2u);
}

TEST(NotificationTest, InterruptFiresOnceThenDisarms) {
  NotificationQueue q(8);
  int fired = 0;
  q.ArmInterrupt([&fired] { ++fired; });
  EXPECT_TRUE(q.interrupts_armed());
  q.Post({NotificationKind::kRxData, 1, 0});
  q.Post({NotificationKind::kRxData, 2, 0});
  EXPECT_EQ(fired, 1);  // one-shot
  EXPECT_FALSE(q.interrupts_armed());
  q.ArmInterrupt([&fired] { ++fired; });
  q.Post({NotificationKind::kRxData, 3, 0});
  EXPECT_EQ(fired, 2);
}

TEST(NotificationTest, DisarmSuppressesInterrupt) {
  NotificationQueue q(8);
  int fired = 0;
  q.ArmInterrupt([&fired] { ++fired; });
  q.DisarmInterrupt();
  q.Post({NotificationKind::kRxData, 1, 0});
  EXPECT_EQ(fired, 0);
}

}  // namespace
}  // namespace norman::nic
