#include "src/common/intrusive_list.h"

#include <gtest/gtest.h>

#include <vector>

namespace norman {
namespace {

struct Item {
  explicit Item(int v) : value(v) {}
  int value;
  IntrusiveListNode node;
};

using ItemList = IntrusiveList<Item, &Item::node>;

TEST(IntrusiveListTest, StartsEmpty) {
  ItemList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.Front(), nullptr);
  EXPECT_EQ(list.PopFront(), nullptr);
}

TEST(IntrusiveListTest, PushPopFifo) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 2);
  EXPECT_EQ(list.PopFront()->value, 3);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, PushFrontLifo) {
  ItemList list;
  Item a(1), b(2);
  list.PushFront(&a);
  list.PushFront(&b);
  EXPECT_EQ(list.Front()->value, 2);
  EXPECT_EQ(list.Back()->value, 1);
  list.Clear();
}

TEST(IntrusiveListTest, RemoveFromMiddle) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  ItemList::Remove(&b);
  EXPECT_FALSE(ItemList::IsLinked(&b));
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.PopFront()->value, 1);
  EXPECT_EQ(list.PopFront()->value, 3);
}

TEST(IntrusiveListTest, UnlinkIsIdempotent) {
  ItemList list;
  Item a(1);
  list.PushBack(&a);
  ItemList::Remove(&a);
  ItemList::Remove(&a);  // no-op
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveListTest, Iteration) {
  ItemList list;
  Item a(1), b(2), c(3);
  list.PushBack(&a);
  list.PushBack(&b);
  list.PushBack(&c);
  std::vector<int> seen;
  for (Item& item : list) {
    seen.push_back(item.value);
  }
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
  list.Clear();
}

TEST(IntrusiveListTest, MoveBetweenLists) {
  ItemList l1, l2;
  Item a(1);
  l1.PushBack(&a);
  ItemList::Remove(&a);
  l2.PushBack(&a);
  EXPECT_TRUE(l1.empty());
  EXPECT_EQ(l2.Front(), &a);
  l2.Clear();
}

TEST(IntrusiveListTest, PopBack) {
  ItemList list;
  Item a(1), b(2);
  list.PushBack(&a);
  list.PushBack(&b);
  EXPECT_EQ(list.PopBack()->value, 2);
  EXPECT_EQ(list.PopBack()->value, 1);
  EXPECT_EQ(list.PopBack(), nullptr);
}

}  // namespace
}  // namespace norman
