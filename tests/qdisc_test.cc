#include "src/dataplane/qdisc.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/common/rng.h"
#include "tests/test_util.h"
#include "src/net/packet_pool.h"

namespace norman::dataplane {
namespace {

using net::Direction;
using overlay::ConnMetadata;
using test::MakeUdpContext;

// Builds a TX packet owned by `uid` with the given payload size.
net::PacketPtr OwnedPacket(uint32_t uid, size_t payload,
                           overlay::PacketContext* ctx_out,
                           std::unique_ptr<test::ContextBundle>* keepalive) {
  *keepalive = MakeUdpContext(1000, 2000, Direction::kTx,
                              ConnMetadata{uid, uid, uid + 100, 1, 0},
                              payload);
  *ctx_out = (*keepalive)->ctx;
  return net::MakePacket(
      std::vector<uint8_t>((*keepalive)->frame));
}

// --- PrioQdisc ---

TEST(PrioQdiscTest, HigherBandAlwaysFirst) {
  // uid 1 -> band 0 (high), uid 2 -> band 1 (low).
  PrioQdisc q(2, ClassifyByUid({{1, 0}, {2, 1}}));
  overlay::PacketContext ctx;
  std::unique_ptr<test::ContextBundle> k1, k2, k3;
  ASSERT_TRUE(q.Enqueue(OwnedPacket(2, 100, &ctx, &k1), ctx));
  ASSERT_TRUE(q.Enqueue(OwnedPacket(1, 100, &ctx, &k2), ctx));
  ASSERT_TRUE(q.Enqueue(OwnedPacket(2, 100, &ctx, &k3), ctx));
  EXPECT_EQ(q.backlog_packets(), 3u);

  auto first = q.Dequeue(0);
  ASSERT_NE(first, nullptr);
  // High-priority (uid 1) packet jumps the earlier low-priority ones.
  // Identify by checking the remaining backlog drains as the two uid-2 pkts.
  EXPECT_EQ(q.backlog_packets(), 2u);
  EXPECT_NE(q.Dequeue(0), nullptr);
  EXPECT_NE(q.Dequeue(0), nullptr);
  EXPECT_EQ(q.Dequeue(0), nullptr);
}

TEST(PrioQdiscTest, UnknownClassClampsToLowestBand) {
  PrioQdisc q(2, ClassifyByUid({{1, 0}}), /*per_band_capacity=*/4);
  overlay::PacketContext ctx;
  std::unique_ptr<test::ContextBundle> k;
  // uid 99 unmapped -> class 0 by ClassifyByUid default... so use a direct
  // classifier returning a too-large band to exercise clamping.
  PrioQdisc q2(2, [](const overlay::PacketContext&) { return 7u; });
  ASSERT_TRUE(q2.Enqueue(OwnedPacket(9, 10, &ctx, &k), ctx));
  EXPECT_EQ(q2.backlog_packets(), 1u);
}

TEST(PrioQdiscTest, BandOverflowDrops) {
  PrioQdisc q(1, [](const overlay::PacketContext&) { return 0u; },
              /*per_band_capacity=*/2);
  overlay::PacketContext ctx;
  std::unique_ptr<test::ContextBundle> k1, k2, k3;
  EXPECT_TRUE(q.Enqueue(OwnedPacket(1, 10, &ctx, &k1), ctx));
  EXPECT_TRUE(q.Enqueue(OwnedPacket(1, 10, &ctx, &k2), ctx));
  EXPECT_FALSE(q.Enqueue(OwnedPacket(1, 10, &ctx, &k3), ctx));
  EXPECT_EQ(q.drops(0), 1u);
}

// --- TokenBucketQdisc ---

TEST(TokenBucketTest, BurstPassesImmediately) {
  TokenBucketQdisc q(/*rate=*/8'000'000 /*1MB/s*/, /*burst=*/3000);
  overlay::PacketContext ctx;
  std::unique_ptr<test::ContextBundle> k1, k2;
  ASSERT_TRUE(q.Enqueue(OwnedPacket(1, 1000, &ctx, &k1), ctx));
  ASSERT_TRUE(q.Enqueue(OwnedPacket(1, 1000, &ctx, &k2), ctx));
  EXPECT_NE(q.Dequeue(0), nullptr);
  EXPECT_NE(q.Dequeue(0), nullptr);  // both fit in the 3000B burst
}

TEST(TokenBucketTest, ExcessWaitsForRefill) {
  // 8 Mbps = 1 byte/us. Burst 1100B. Packets ~1074B (1000B payload + hdrs).
  TokenBucketQdisc q(8'000'000, 1100);
  overlay::PacketContext ctx;
  std::unique_ptr<test::ContextBundle> k1, k2;
  ASSERT_TRUE(q.Enqueue(OwnedPacket(1, 1000, &ctx, &k1), ctx));
  ASSERT_TRUE(q.Enqueue(OwnedPacket(1, 1000, &ctx, &k2), ctx));
  auto p1 = q.Dequeue(0);
  ASSERT_NE(p1, nullptr);
  EXPECT_EQ(q.Dequeue(0), nullptr);  // bucket drained

  const Nanos eligible = q.NextEligibleTime(0);
  ASSERT_GT(eligible, 0);
  // One packet of ~1042B at 1 byte/us needs ~1ms.
  EXPECT_GT(eligible, 500 * kMicrosecond);
  EXPECT_LT(eligible, 2 * kMillisecond);
  EXPECT_EQ(q.Dequeue(eligible - 10 * kMicrosecond), nullptr);
  EXPECT_NE(q.Dequeue(eligible + kMicrosecond), nullptr);
}

TEST(TokenBucketTest, AchievedRateMatchesConfigured) {
  // Drain a deep backlog and check bytes/time ~= rate.
  const BitsPerSecond rate = 80'000'000;  // 10 MB/s
  TokenBucketQdisc q(rate, 2000, /*capacity=*/10000);
  overlay::PacketContext ctx;
  uint64_t queued_bytes = 0;
  std::vector<std::unique_ptr<test::ContextBundle>> keep;
  for (int i = 0; i < 200; ++i) {
    std::unique_ptr<test::ContextBundle> k;
    auto p = OwnedPacket(1, 958, &ctx, &k);  // 1000B frames
    queued_bytes += p->size();
    ASSERT_TRUE(q.Enqueue(std::move(p), ctx));
    keep.push_back(std::move(k));
  }
  Nanos now = 0;
  uint64_t drained = 0;
  while (drained < queued_bytes) {
    auto p = q.Dequeue(now);
    if (p != nullptr) {
      drained += p->size();
      continue;
    }
    const Nanos next = q.NextEligibleTime(now);
    ASSERT_GT(next, now);
    now = next;
  }
  const double achieved = AchievedBps(drained, now);
  EXPECT_NEAR(achieved / static_cast<double>(rate), 1.0, 0.05);
}

TEST(TokenBucketTest, EmptyQueueNeverEligible) {
  TokenBucketQdisc q(1000, 1000);
  EXPECT_EQ(q.NextEligibleTime(12345), -1);
  EXPECT_EQ(q.Dequeue(12345), nullptr);
}

TEST(TokenBucketTest, CapacityOverflowDrops) {
  TokenBucketQdisc q(1000, 1000, /*capacity=*/1);
  overlay::PacketContext ctx;
  std::unique_ptr<test::ContextBundle> k1, k2;
  EXPECT_TRUE(q.Enqueue(OwnedPacket(1, 10, &ctx, &k1), ctx));
  EXPECT_FALSE(q.Enqueue(OwnedPacket(1, 10, &ctx, &k2), ctx));
  EXPECT_EQ(q.drops(), 1u);
}

// --- DrrQdisc ---

TEST(DrrQdiscTest, EqualQuantaGiveEqualService) {
  DrrQdisc q(ClassifyByUid({{1, 1}, {2, 2}}), /*quantum=*/1514);
  overlay::PacketContext ctx;
  std::vector<std::unique_ptr<test::ContextBundle>> keep;
  // 20 packets per class, same size.
  for (int i = 0; i < 20; ++i) {
    for (uint32_t uid : {1u, 2u}) {
      std::unique_ptr<test::ContextBundle> k;
      ASSERT_TRUE(q.Enqueue(OwnedPacket(uid, 500, &ctx, &k), ctx));
      keep.push_back(std::move(k));
    }
  }
  // Dequeue half the backlog; both classes should have been served ~equally.
  std::map<uint32_t, int> served;  // by src uid == owner uid
  for (int i = 0; i < 20; ++i) {
    auto p = q.Dequeue(0);
    ASSERT_NE(p, nullptr);
    ++served[p->meta().connection];  // meta not set; count below differently
  }
  // Packets are indistinguishable here; instead verify total order fairness
  // via backlog: after 20 dequeues of 40, 20 remain.
  EXPECT_EQ(q.backlog_packets(), 20u);
}

TEST(DrrQdiscTest, ServesAllBackloggedClasses) {
  DrrQdisc q(ClassifyByUid({{1, 1}, {2, 2}, {3, 3}}), 1514);
  overlay::PacketContext ctx;
  std::vector<std::unique_ptr<test::ContextBundle>> keep;
  for (uint32_t uid : {1u, 2u, 3u}) {
    std::unique_ptr<test::ContextBundle> k;
    ASSERT_TRUE(q.Enqueue(OwnedPacket(uid, 100, &ctx, &k), ctx));
    keep.push_back(std::move(k));
  }
  EXPECT_EQ(q.backlog_packets(), 3u);
  EXPECT_NE(q.Dequeue(0), nullptr);
  EXPECT_NE(q.Dequeue(0), nullptr);
  EXPECT_NE(q.Dequeue(0), nullptr);
  EXPECT_EQ(q.Dequeue(0), nullptr);
  EXPECT_EQ(q.backlog_packets(), 0u);
}

TEST(DrrQdiscTest, LargePacketsNeedAccumulatedDeficit) {
  // Quantum smaller than the packet: still dequeues after enough rounds.
  DrrQdisc q([](const overlay::PacketContext&) { return 0u; },
             /*quantum=*/100);
  overlay::PacketContext ctx;
  std::unique_ptr<test::ContextBundle> k;
  ASSERT_TRUE(q.Enqueue(OwnedPacket(1, 958, &ctx, &k), ctx));  // 1000B frame
  EXPECT_NE(q.Dequeue(0), nullptr);
}

// --- WfqQdisc: the paper's QoS workhorse ---

struct WfqCase {
  double weight_a;
  double weight_b;
};

class WfqWeightTest : public ::testing::TestWithParam<WfqCase> {};

TEST_P(WfqWeightTest, ThroughputSharesTrackWeights) {
  const auto param = GetParam();
  WfqQdisc q(ClassifyByUid({{1, 1}, {2, 2}}));
  q.SetWeight(1, param.weight_a);
  q.SetWeight(2, param.weight_b);

  overlay::PacketContext ctx;
  std::vector<std::unique_ptr<test::ContextBundle>> keep;
  // Both classes continuously backlogged with equal-size packets.
  for (int i = 0; i < 400; ++i) {
    for (uint32_t uid : {1u, 2u}) {
      std::unique_ptr<test::ContextBundle> k;
      ASSERT_TRUE(q.Enqueue(OwnedPacket(uid, 958, &ctx, &k), ctx));
      keep.push_back(std::move(k));
    }
  }
  // Serve 400 packets (half the backlog, so both stay backlogged).
  for (int i = 0; i < 400; ++i) {
    ASSERT_NE(q.Dequeue(0), nullptr);
  }
  const double a = static_cast<double>(q.dequeued_bytes(1));
  const double b = static_cast<double>(q.dequeued_bytes(2));
  ASSERT_GT(a, 0);
  ASSERT_GT(b, 0);
  const double expected = param.weight_a / param.weight_b;
  EXPECT_NEAR(a / b, expected, expected * 0.1)
      << "weights " << param.weight_a << ":" << param.weight_b;
}

INSTANTIATE_TEST_SUITE_P(
    WeightRatios, WfqWeightTest,
    ::testing::Values(WfqCase{1, 1}, WfqCase{2, 1}, WfqCase{4, 1},
                      WfqCase{8, 1}, WfqCase{3, 2}, WfqCase{1, 4},
                      WfqCase{10, 1}));

TEST(WfqQdiscTest, WorkConservingWhenOneClassIdle) {
  WfqQdisc q(ClassifyByUid({{1, 1}, {2, 2}}));
  q.SetWeight(1, 1.0);
  q.SetWeight(2, 100.0);  // heavy class... but it has no traffic
  overlay::PacketContext ctx;
  std::vector<std::unique_ptr<test::ContextBundle>> keep;
  for (int i = 0; i < 10; ++i) {
    std::unique_ptr<test::ContextBundle> k;
    ASSERT_TRUE(q.Enqueue(OwnedPacket(1, 100, &ctx, &k), ctx));
    keep.push_back(std::move(k));
  }
  // All 10 dequeue immediately despite tiny weight: work conservation.
  for (int i = 0; i < 10; ++i) {
    EXPECT_NE(q.Dequeue(0), nullptr);
  }
}

TEST(WfqQdiscTest, ResumedFlowDoesNotStarveOthers) {
  // A flow that was idle must not accumulate credit and then monopolize:
  // SCFQ bounds this via start = max(V, last_finish).
  WfqQdisc q(ClassifyByUid({{1, 1}, {2, 2}}));
  overlay::PacketContext ctx;
  std::vector<std::unique_ptr<test::ContextBundle>> keep;
  auto enqueue = [&](uint32_t uid) {
    std::unique_ptr<test::ContextBundle> k;
    ASSERT_TRUE(q.Enqueue(OwnedPacket(uid, 500, &ctx, &k), ctx));
    keep.push_back(std::move(k));
  };
  // Class 2 streams alone for a while.
  for (int i = 0; i < 50; ++i) {
    enqueue(2);
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_NE(q.Dequeue(0), nullptr);
  }
  // Now class 1 wakes with a burst while class 2 continues.
  for (int i = 0; i < 50; ++i) {
    enqueue(1);
    enqueue(2);
  }
  const uint64_t before_2 = q.dequeued_bytes(2);
  for (int i = 0; i < 50; ++i) {
    ASSERT_NE(q.Dequeue(0), nullptr);
  }
  // Class 2 must have received roughly half of the 50 slots.
  const uint64_t delta_2 = q.dequeued_bytes(2) - before_2;
  EXPECT_GT(delta_2, 15u * 532);  // at least ~15 of 25 expected packets
}

TEST(WfqQdiscTest, PerClassCapacityDrops) {
  WfqQdisc q([](const overlay::PacketContext&) { return 0u; },
             /*per_class_capacity=*/2);
  overlay::PacketContext ctx;
  std::unique_ptr<test::ContextBundle> k1, k2, k3;
  EXPECT_TRUE(q.Enqueue(OwnedPacket(1, 10, &ctx, &k1), ctx));
  EXPECT_TRUE(q.Enqueue(OwnedPacket(1, 10, &ctx, &k2), ctx));
  EXPECT_FALSE(q.Enqueue(OwnedPacket(1, 10, &ctx, &k3), ctx));
}

// --- Classifiers ---

TEST(ClassifierTest, ByDscp) {
  auto cls = ClassifyByDscp({{10, 1}, {46, 2}});
  auto ef = MakeUdpContext(1, 2, Direction::kTx, {}, 10, /*dscp=*/46);
  auto af = MakeUdpContext(1, 2, Direction::kTx, {}, 10, /*dscp=*/10);
  auto be = MakeUdpContext(1, 2, Direction::kTx, {}, 10, /*dscp=*/0);
  EXPECT_EQ(cls(ef->ctx), 2u);
  EXPECT_EQ(cls(af->ctx), 1u);
  EXPECT_EQ(cls(be->ctx), 0u);
}

TEST(ClassifierTest, ByCgroup) {
  auto cls = ClassifyByCgroup({{7, 3}});
  auto in_group = MakeUdpContext(1, 2, Direction::kTx,
                                 ConnMetadata{1, 1, 1, /*cgroup=*/7, 0});
  auto other = MakeUdpContext(1, 2, Direction::kTx,
                              ConnMetadata{1, 1, 1, /*cgroup=*/8, 0});
  EXPECT_EQ(cls(in_group->ctx), 3u);
  EXPECT_EQ(cls(other->ctx), 0u);
}

TEST(ClassifierTest, ByOverlayProgram) {
  // Classify game traffic (dst port 1234 UDP) as class 1, rest class 0 —
  // the §2 QoS scenario expressed as an overlay program.
  overlay::Program prog{
      overlay::Instruction::Ldf(1, overlay::Field::kDstPort),
      overlay::Instruction::JmpCmpImm(overlay::Opcode::kJeq, 1, 1234, 3),
      overlay::Instruction::RetImm(0),
      overlay::Instruction::RetImm(1),
  };
  auto cls = ClassifyByOverlay(prog);
  auto game = MakeUdpContext(50000, 1234, Direction::kTx);
  auto web = MakeUdpContext(50000, 80, Direction::kTx);
  EXPECT_EQ(cls(game->ctx), 1u);
  EXPECT_EQ(cls(web->ctx), 0u);
}

}  // namespace
}  // namespace norman::dataplane
