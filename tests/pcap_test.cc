#include "src/net/pcap_writer.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/net/packet_builder.h"

namespace norman::net {
namespace {

std::vector<uint8_t> SampleFrame(size_t payload = 20) {
  FrameEndpoints ep{MacAddress::ForHost(1), MacAddress::ForHost(2),
                    Ipv4Address::FromOctets(10, 0, 0, 1),
                    Ipv4Address::FromOctets(10, 0, 0, 2)};
  return BuildUdpFrame(ep, 1, 2, std::vector<uint8_t>(payload, 0xcd));
}

TEST(PcapWriterTest, EmptyFileHasOnlyGlobalHeader) {
  PcapWriter w;
  EXPECT_EQ(w.buffer().size(), 24u);
  EXPECT_EQ(w.record_count(), 0u);
  // Little-endian magic at the front.
  EXPECT_EQ(w.buffer()[0], 0xd4);
  EXPECT_EQ(w.buffer()[1], 0xc3);
  EXPECT_EQ(w.buffer()[2], 0xb2);
  EXPECT_EQ(w.buffer()[3], 0xa1);
  // Link type Ethernet at offset 20.
  EXPECT_EQ(w.buffer()[20], 1);
}

TEST(PcapWriterTest, RecordsRoundTripThroughParser) {
  PcapWriter w;
  const auto f1 = SampleFrame(10);
  const auto f2 = SampleFrame(100);
  w.AddRecord(1 * kSecond + 250 * kMicrosecond, f1);
  w.AddRecord(2 * kSecond, f2);
  EXPECT_EQ(w.record_count(), 2u);

  auto records = ParsePcap(w.buffer());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].timestamp, 1 * kSecond + 250 * kMicrosecond);
  EXPECT_EQ((*records)[0].bytes, f1);
  EXPECT_EQ((*records)[0].original_length, f1.size());
  EXPECT_EQ((*records)[1].bytes, f2);
}

TEST(PcapWriterTest, SnaplenTruncatesButRecordsOriginalLength) {
  PcapWriter w(/*snaplen=*/32);
  const auto frame = SampleFrame(200);
  w.AddRecord(0, frame);
  auto records = ParsePcap(w.buffer());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].bytes.size(), 32u);
  EXPECT_EQ((*records)[0].original_length, frame.size());
  EXPECT_TRUE(std::equal((*records)[0].bytes.begin(),
                         (*records)[0].bytes.end(), frame.begin()));
}

TEST(PcapWriterTest, SubSecondTimestampPrecisionIsMicroseconds) {
  PcapWriter w;
  w.AddRecord(5 * kSecond + 123456789 /* ns */, SampleFrame());
  auto records = ParsePcap(w.buffer());
  ASSERT_TRUE(records.ok());
  // 123456789ns floors to 123456us.
  EXPECT_EQ((*records)[0].timestamp, 5 * kSecond + 123456 * kMicrosecond);
}

TEST(PcapParserTest, RejectsBadMagic) {
  std::vector<uint8_t> junk(24, 0);
  EXPECT_FALSE(ParsePcap(junk).ok());
}

TEST(PcapParserTest, RejectsTruncatedHeader) {
  std::vector<uint8_t> junk(10, 0);
  EXPECT_FALSE(ParsePcap(junk).ok());
}

TEST(PcapParserTest, RejectsTruncatedRecord) {
  PcapWriter w;
  w.AddRecord(0, SampleFrame());
  auto buf = w.buffer();
  buf.resize(buf.size() - 4);  // chop the record body
  EXPECT_FALSE(ParsePcap(buf).ok());
}

TEST(PcapWriterTest, WritesToFile) {
  PcapWriter w;
  w.AddRecord(0, SampleFrame());
  const std::string path = ::testing::TempDir() + "/norman_test.pcap";
  ASSERT_TRUE(w.WriteToFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  EXPECT_EQ(static_cast<size_t>(std::ftell(f)), w.buffer().size());
  std::fclose(f);
}

}  // namespace
}  // namespace norman::net
