#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace norman {
namespace {

TEST(SplitMix64Test, KnownVector) {
  // Reference values from Vigna's splitmix64.c with seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.Next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.Next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.Next(), 0x06c45d188009454fULL);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedZeroIsZero) {
  Rng rng(42);
  EXPECT_EQ(rng.NextBounded(0), 0u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(42);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextInRange(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, DoubleMeanNearHalf) {
  Rng rng(10);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextDouble();
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(250.0);
  }
  EXPECT_NEAR(sum / n, 250.0, 5.0);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(12);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(rng.NextExponential(10.0), 0.0);
  }
}

TEST(RngTest, BoolProbability) {
  Rng rng(13);
  int trues = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    trues += rng.NextBool(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.3, 0.01);
}

TEST(RngTest, U32UsesHighBits) {
  Rng rng(14);
  // Not a fixed vector; just confirm it is not constantly zero/degenerate.
  std::set<uint32_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(rng.NextU32());
  }
  EXPECT_GT(seen.size(), 95u);
}

}  // namespace
}  // namespace norman
